(** Overlay invariant auditor.

    Structural audits of the two overlay substrates, runnable from tests
    and from the CLI after any workload. Everything is read-only.

    P-Grid ({!pgrid}) — the trie must be well-formed:
    - one split boundary per path level (["split-arity"], error) and a
      non-empty key region (["empty-region"], error);
    - random probe keys across the whole key space must always find a
      responsible peer (["uncovered-key"], error);
    - every item a peer stores must lie inside the region its path
      covers (["misplaced-item"], error);
    - level-[l] references must point into the complementary subtree at
      depth [l+1] (["bad-ref"], error) and must exist (["unknown-peer"],
      error);
    - replicas must share the peer's exact path (["replica-path"],
      error), list each other symmetrically (["replica-asymmetry"],
      warning) and eventually hold the same items — divergence is only a
      warning (["replica-divergence"]) because anti-entropy closes it;

    Chord ({!chord}) — the ring must match the oracle construction:
    - peer ring ids unique (["duplicate-ring-id"], error);
    - successor lists must walk the ring clockwise (["bad-successor"],
      error), the predecessor must be the counter-clockwise neighbour
      (["bad-predecessor"], error) and finger [b] must be the first peer
      at or after [finger_start] (["bad-finger"], error);
    - every alive peer needs at least one alive successor, or routed
      puts lose their replicas and stuck lookups time out
      (["dead-successors"], warning). *)

module Overlay = Unistore_pgrid.Overlay
module Chord = Unistore_chord.Chord

(** [pgrid ?probes overlay] audits the trie; [probes] random keys are
    used for the coverage check (default 256, seeded — deterministic). *)
val pgrid : ?probes:int -> Overlay.t -> Diagnostic.t list

val chord : Chord.t -> Diagnostic.t list
