module Overlay = Unistore_pgrid.Overlay
module Node = Unistore_pgrid.Node
module Store = Unistore_pgrid.Store
module Chord = Unistore_chord.Chord
module Ring = Unistore_chord.Ring
module Bitkey = Unistore_util.Bitkey
module Rng = Unistore_util.Rng
module D = Diagnostic

(* ------------------------------------------------------------------ *)
(* P-Grid                                                              *)

let random_probe_key rng =
  (* Mix printable and raw-byte keys to probe all of key space (same
     scheme as Build.check_invariants). *)
  let len = 1 + Rng.int rng 12 in
  String.init len (fun _ -> Char.chr (Rng.int rng 256))

let pgrid ?(probes = 256) ov =
  let ds = ref [] in
  let err code fmt = Format.kasprintf (fun m -> ds := D.make ~severity:D.Error ~code m :: !ds) fmt in
  let warn code fmt =
    Format.kasprintf (fun m -> ds := D.make ~severity:D.Warning ~code m :: !ds) fmt
  in
  let nodes = Overlay.nodes ov in
  (* Trie-path / split consistency and region sanity. *)
  List.iter
    (fun (nd : Node.t) ->
      let plen = Bitkey.length nd.Node.path in
      if Array.length nd.Node.splits <> plen then
        err "split-arity" "peer%d has %d split boundaries for a %d-level path" nd.Node.id
          (Array.length nd.Node.splits) plen;
      match Node.region nd with
      | lo, Some hi when String.compare lo hi >= 0 ->
        err "empty-region" "peer%d has empty region [%S, %S)" nd.Node.id lo hi
      | _ -> ())
    nodes;
  (* Key-space coverage. *)
  let probe_rng = Rng.create 0xC0FFEE in
  let uncovered = ref 0 and example = ref "" in
  for _ = 1 to probes do
    let key = random_probe_key probe_rng in
    if Overlay.responsible ov key = [] then begin
      incr uncovered;
      if !example = "" then example := key
    end
  done;
  if !uncovered > 0 then
    err "uncovered-key" "%d of %d probe keys have no responsible peer (e.g. %S)" !uncovered probes
      !example;
  (* Data placement: stored items must lie in the peer's region. *)
  List.iter
    (fun (nd : Node.t) ->
      Store.iter nd.Node.store (fun item ->
          if not (Node.covers nd item.Store.key) then
            err "misplaced-item" "peer%d stores item %S/%S outside its region" nd.Node.id
              item.Store.key item.Store.item_id))
    nodes;
  (* Routing references: level l must point into the complementary
     subtree at depth l+1. *)
  List.iter
    (fun (nd : Node.t) ->
      Array.iteri
        (fun l refs ->
          List.iter
            (fun r ->
              match Overlay.node ov r with
              | target ->
                let sibling = Bitkey.flip (Bitkey.take nd.Node.path (l + 1)) l in
                let tp = target.Node.path in
                if
                  not (Bitkey.is_prefix ~prefix:sibling tp || Bitkey.is_prefix ~prefix:tp sibling)
                then
                  err "bad-ref" "peer%d level-%d ref peer%d has path %a, not in subtree %a"
                    nd.Node.id l r Bitkey.pp tp Bitkey.pp sibling
              | exception Invalid_argument _ ->
                err "unknown-peer" "peer%d references unknown peer %d at level %d" nd.Node.id r l)
            refs)
        nd.Node.refs)
    nodes;
  (* Replica-set agreement. *)
  List.iter
    (fun (nd : Node.t) ->
      List.iter
        (fun r ->
          match Overlay.node ov r with
          | target ->
            if not (Bitkey.equal target.Node.path nd.Node.path) then
              err "replica-path" "peer%d replica peer%d has path %a, expected %a" nd.Node.id r
                Bitkey.pp target.Node.path Bitkey.pp nd.Node.path
            else begin
              if not (List.mem nd.Node.id target.Node.replicas) then
                warn "replica-asymmetry" "peer%d lists replica peer%d, but not vice versa"
                  nd.Node.id r;
              let dg n = List.sort compare (Store.digest n.Node.store) in
              if dg nd <> dg target then
                warn "replica-divergence"
                  "peer%d and replica peer%d hold different items (anti-entropy pending?)"
                  nd.Node.id r
            end
          | exception Invalid_argument _ ->
            err "unknown-peer" "peer%d lists unknown replica %d" nd.Node.id r)
        nd.Node.replicas)
    nodes;
  Diagnostic.sort (List.rev !ds)

(* ------------------------------------------------------------------ *)
(* Chord                                                               *)

let chord t =
  let ds = ref [] in
  let err code fmt = Format.kasprintf (fun m -> ds := D.make ~severity:D.Error ~code m :: !ds) fmt in
  let warn code fmt =
    Format.kasprintf (fun m -> ds := D.make ~severity:D.Warning ~code m :: !ds) fmt
  in
  let peers = Chord.peers t in
  let by_ring =
    List.sort (fun a b -> compare (Chord.ring_id t a) (Chord.ring_id t b)) peers |> Array.of_list
  in
  let n = Array.length by_ring in
  (* Unique ring identifiers (the oracle construction requires it). *)
  for i = 1 to n - 1 do
    if Chord.ring_id t by_ring.(i) = Chord.ring_id t by_ring.(i - 1) then
      err "duplicate-ring-id" "peers %d and %d share ring id %d" by_ring.(i - 1) by_ring.(i)
        (Chord.ring_id t by_ring.(i))
  done;
  let index_of = Hashtbl.create n in
  Array.iteri (fun i id -> Hashtbl.replace index_of id i) by_ring;
  (* First peer whose ring id is >= x, clockwise with wrap-around. *)
  let succ_of_ring x =
    let rec scan i = if i >= n then by_ring.(0) else if Chord.ring_id t by_ring.(i) >= x then by_ring.(i) else scan (i + 1) in
    scan 0
  in
  List.iter
    (fun id ->
      let i = Hashtbl.find index_of id in
      (* Successor list: the next peers clockwise, nearest first. *)
      List.iteri
        (fun k s ->
          let expected = by_ring.((i + 1 + k) mod n) in
          if s <> expected then
            err "bad-successor" "peer%d successor[%d] is peer%d, expected peer%d" id k s expected)
        (Chord.successors t id);
      let expected_pred = by_ring.((i + n - 1) mod n) in
      if n > 1 && Chord.predecessor_of t id <> expected_pred then
        err "bad-predecessor" "peer%d predecessor is peer%d, expected peer%d" id
          (Chord.predecessor_of t id) expected_pred;
      Array.iteri
        (fun b f ->
          let expected = succ_of_ring (Ring.finger_start (Chord.ring_id t id) b) in
          if f <> expected then
            err "bad-finger" "peer%d finger[%d] is peer%d, expected peer%d" id b f expected)
        (Chord.fingers t id);
      (* Liveness: an alive peer whose successors are all dead loses its
         replica group and strands routed operations. *)
      let succs = Chord.successors t id in
      if
        Chord.is_alive t id && succs <> []
        && not (List.exists (Chord.is_alive t) succs)
      then
        warn "dead-successors" "peer%d is alive but every successor %s is dead" id
          (String.concat "," (List.map string_of_int succs)))
    peers;
  Diagnostic.sort (List.rev !ds)
