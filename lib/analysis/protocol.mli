(** The static protocol table: one entry per message constructor of each
    overlay substrate, with its on-wire/trace kind string and its role in
    the request/reply discipline.

    This table is the ground truth two analyzers share:

    - {!Srclint}'s [protocol-exhaustiveness] rule cross-checks it against
      the sources — every constructor of [Unistore_pgrid.Message.t]
      (resp. [Unistore_chord.Chord.msg]) must appear here with the kind
      string the [kind] function actually returns, must be matched
      explicitly (not via a wildcard) by [size], [kind] and the overlay's
      [dispatch], and every {!Request} entry's pending-table [ops] labels
      must occur in the handler source, next to a retry/timeout arming.
    - {!Tracelint}'s [unknown-kind] check walks a recorded trace and
      flags any event kind this table does not know about (fault-injection
      markers, [fault.*], excepted) — so a message added to the code
      without a table entry is caught at runtime too, keeping the static
      table honest in the other direction. *)

type role =
  | Request of { ops : string list }
      (** a message that can hit a dead peer and must therefore be
          registered in the origin's pending table under one of these
          [op] labels, with a timeout armed (labels are a P-Grid-ism;
          [ops = []] skips the label check, as for Chord whose pending
          entries are unlabeled) *)
  | Reply  (** resolves a pending request at the origin *)
  | Background
      (** fire-and-forget traffic: replication, anti-entropy, gossip,
          shipped closures — losing one is repaired epidemically, not
          by a per-request timeout *)

type entry = { constructor : string; kind : string; role : role }

val pgrid : entry list
val chord : entry list

val kinds : entry list -> string list
(** The kind strings of [entries], sorted. *)

val known_kinds : string list
(** All kind strings of both substrates, sorted; the vocabulary
    {!Tracelint} accepts in traces (plus [fault.*] markers). *)
