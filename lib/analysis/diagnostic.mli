(** Diagnostics shared by the static analyzers.

    Every analyzer in this library ({!Semantic}, {!Tracelint}, {!Audit})
    reports findings as a list of diagnostics: a severity, a short
    machine-readable code (stable across releases, usable in tests), a
    human-readable message and — when the finding points into VQL source
    text — a {!Unistore_vql.Loc.t} span. Rendering is rustc-style: the
    position, the offending source line and a caret. *)

module Loc = Unistore_vql.Loc

type severity = Error | Warning | Info

val pp_severity : Format.formatter -> severity -> unit

type t = {
  severity : severity;
  code : string;  (** stable slug, e.g. ["unbound-var"], ["routing-loop"] *)
  message : string;
  span : Loc.t;  (** {!Loc.dummy} when the finding has no source position *)
  hint : string option;
}

val make : ?span:Loc.t -> ?hint:string -> severity:severity -> code:string -> string -> t

(** [makef ... fmt] is {!make} with a format string for the message. *)
val makef :
  ?span:Loc.t ->
  ?hint:string ->
  severity:severity ->
  code:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val is_error : t -> bool

(** [has_errors ds] is true iff any diagnostic is [Error]-severity. *)
val has_errors : t list -> bool

(** [count ds] is [(errors, warnings, infos)]. *)
val count : t list -> int * int * int

(** Sort by severity (errors first), then by span start. *)
val sort : t list -> t list

(** [render ?src d] renders one diagnostic. With [src] and a real span:
    {v
    error[unsat-filter] at line 2, column 3: contradictory bounds ...
      FILTER ?age > 40 AND ?age < 30
      ^
      hint: ...
    v} *)
val render : ?src:string -> t -> string

(** All diagnostics, sorted, one per line (multi-line when [src] is
    given), followed by a ["N error(s), M warning(s)"] summary line. *)
val render_all : ?src:string -> t list -> string

val pp : Format.formatter -> t -> unit
