(** A source-level determinism and protocol-exhaustiveness linter over
    the repo's own OCaml tree, built on compiler-libs (the compiler's
    parser plus [Ast_iterator] — no ppx, no typing).

    The simulator's correctness story rests on a determinism contract:
    same seed, byte-identical trace (DESIGN.md, "The determinism
    contract"). [Tracelint] checks it dynamically, after the fact, at a
    handful of sizes; this linter checks its source-level preconditions
    at build time, the way a race detector would in a systems stack.

    Rules (each toggleable, each suppressible per line with
    [(* srclint: allow <rule> *)]):

    - [unordered-iteration]: a [Hashtbl.fold]/[iter] whose result
      escapes without a [List.sort]/[Det.sorted_*]-style normalization —
      hash-bucket order leaking into protocol behavior.
    - [ambient-effects]: any [Random.*], [Sys.time], [Unix.gettimeofday]
      etc. outside [lib/util/rng.ml]; all randomness must flow from the
      seeded split-RNG and all time from the simulated clock.
    - [polymorphic-compare]: structural [=]/[compare] at positions that
      are syntactically [float]- or [Bitkey.t]-typed, where the
      dedicated comparator exists ([Float.equal], [Bitkey.compare], …).
    - [protocol-exhaustiveness]: cross-checks the static {!Protocol}
      table against the sources — constructors vs. [size]/[kind]/
      [dispatch] arms (no wildcard hiding), kind-string agreement, and
      retry/timeout registration of every request kind. *)

type rule =
  | Unordered_iteration
  | Ambient_effects
  | Polymorphic_compare
  | Protocol_exhaustiveness

val all_rules : rule list

val rule_name : rule -> string
(** ["unordered-iteration"], ["ambient-effects"], ["polymorphic-compare"],
    ["protocol-exhaustiveness"] — also the diagnostic codes. *)

val rule_of_name : string -> rule option

val lint_source : ?rules:rule list -> path:string -> string -> Diagnostic.t list
(** [lint_source ~path src] runs the per-file rules over one
    implementation source. [path] is used for exemptions (the RNG module
    is exempt from [ambient-effects]) and messages; suppression comments
    in [src] are honored. A file that does not parse yields a single
    [parse-error] diagnostic. *)

type protocol_spec = {
  proto_name : string;
  table : Protocol.entry list;
  type_name : string;  (** the variant type, e.g. ["t"] or ["msg"] *)
  size_fn : string;
  kind_fn : string;
  dispatch_fn : string;
}

val pgrid_spec : protocol_spec
val chord_spec : protocol_spec

val check_protocol :
  spec:protocol_spec ->
  decl:string * Parsetree.structure ->
  handlers:(string * Parsetree.structure) list ->
  (string * Diagnostic.t) list
(** [check_protocol ~spec ~decl ~handlers] runs the cross-file protocol
    checks: [decl] is the (path, AST) of the message-type file, and
    [handlers] the files holding [dispatch] and the pending-table
    registrations. Returns [(path, diagnostic)] pairs. *)

type report = { path : string; src : string; diags : Diagnostic.t list }

val lint_paths : ?rules:rule list -> string list -> report list
(** [lint_paths paths] lints every [*.ml] under the given files or
    directories (recursively; [_build] and dotdirs skipped) with the
    per-file rules, plus the protocol cross-checks whenever the scanned
    set contains the pgrid ([lib/pgrid/message.ml] + [overlay.ml]) or
    chord ([lib/chord/chord.ml]) sources. One report per file, in
    path order; suppressions applied. *)

val errors : report list -> int
val has_errors : report list -> bool

val render_reports : report list -> string
(** Rustc-style rendering: per-file diagnostics with source line and
    caret, then a one-line summary. *)
