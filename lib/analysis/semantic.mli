(** VQL semantic analyzer.

    Runs over the parsed AST before the query processor executes a plan
    and reports {!Diagnostic.t}s:

    - unbound variables in projection, filters, ORDER BY / SKYLINE
      (code ["unbound-var"], error) and variables bound once and never
      used (["unused-var"], warning);
    - type inference against a {!Catalog}: every variable accumulates
      type evidence from the patterns that bind it (via the attribute's
      observed value types), from comparisons with constants and from
      string functions ([edist]/[contains]/[prefix] force string); an
      empty intersection is a clash (["type-clash"], error). Querying an
      attribute absent from the catalog is ["unknown-attr"] (warning);
    - unsatisfiable predicates over the filter conjuncts
      ({!Unistore_vql.Algebra.var_constraints}): contradictory range
      bounds, conflicting equalities, impossible edit-distance
      thresholds, prefix/contains tests refuted by an equality
      (["unsat-filter"], error);
    - join-graph connectivity: patterns that share no variable (directly
      or transitively, filters count as edges) form a Cartesian product
      (["cartesian-product"], warning; all-constant existence tests are
      exempt);
    - LIMIT/ORDER interplay: non-positive LIMIT (["bad-limit"], error),
      duplicate ordering/skyline dimensions (["duplicate-dim"],
      warning), LIMIT without any ordering (["nondeterministic-limit"],
      info).

    Severity policy: [Error] marks queries that cannot produce sensible
    results; the engine refuses those. [Warning]/[Info] are advisory. *)

module Ast = Unistore_vql.Ast

(** [analyze ?catalog q] returns the diagnostics for [q], sorted.
    Without a catalog (or with {!Catalog.empty}) the type checks are
    skipped; everything else still runs. *)
val analyze : ?catalog:Catalog.t -> Ast.query -> Diagnostic.t list

(** [analyze_string ?catalog src] parses [src] (without the parser's own
    validation pass, so unbound variables reach the analyzer) and
    analyzes it. [Error] carries a positioned parse error. *)
val analyze_string : ?catalog:Catalog.t -> string -> (Ast.query * Diagnostic.t list, string) result
