let sorted_bindings ?(cmp = compare) tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> cmp a b)

let sorted_keys ?(cmp = compare) tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort cmp

let sorted_iter ?cmp f tbl = List.iter (fun (k, v) -> f k v) (sorted_bindings ?cmp tbl)
