let levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    (* Keep the shorter string in the inner dimension. *)
    let a, b, la, lb = if la <= lb then (a, b, la, lb) else (b, a, lb, la) in
    let prev = Array.init (la + 1) (fun i -> i) in
    let cur = Array.make (la + 1) 0 in
    for j = 1 to lb do
      cur.(0) <- j;
      let bj = b.[j - 1] in
      for i = 1 to la do
        let cost = if a.[i - 1] = bj then 0 else 1 in
        cur.(i) <- min (min (cur.(i - 1) + 1) (prev.(i) + 1)) (prev.(i - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (la + 1)
    done;
    prev.(la)
  end

let within_distance a b d =
  if d < 0 then false
  else begin
    let la = String.length a and lb = String.length b in
    if abs (la - lb) > d then false
    else if d = 0 then String.equal a b
    else begin
      let a, b, la, lb = if la <= lb then (a, b, la, lb) else (b, a, lb, la) in
      (* Banded DP: only cells with |i-j| <= d can be <= d. Cells outside
         the band (or already beyond d) saturate at [inf]. *)
      let inf = d + 1 in
      let sat_add x y = min inf (x + y) in
      let prev = Array.make (la + 1) inf in
      let cur = Array.make (la + 1) inf in
      for i = 0 to min la d do
        prev.(i) <- i
      done;
      let exceeded = ref false in
      let j = ref 1 in
      while (not !exceeded) && !j <= lb do
        let jj = !j in
        Array.fill cur 0 (la + 1) inf;
        let best = ref inf in
        if jj <= d then begin
          cur.(0) <- jj;
          best := jj
        end;
        let lo = max 1 (jj - d) and hi = min la (jj + d) in
        for i = lo to hi do
          let cost = if a.[i - 1] = b.[jj - 1] then 0 else 1 in
          let v =
            min
              (min (sat_add cur.(i - 1) 1) (sat_add prev.(i) 1))
              (sat_add prev.(i - 1) cost)
          in
          cur.(i) <- v;
          if v < !best then best := v
        done;
        if !best >= inf then exceeded := true;
        Array.blit cur 0 prev 0 (la + 1);
        incr j
      done;
      (not !exceeded) && prev.(la) <= d
    end
  end

let qgrams ~q s =
  if q <= 0 then invalid_arg "Strdist.qgrams: q <= 0";
  let padded = String.make (q - 1) '#' ^ s ^ String.make (q - 1) '$' in
  let n = String.length padded in
  if n < q then []
  else List.init (n - q + 1) (fun i -> String.sub padded i q)

let distinct_qgrams ~q s = List.sort_uniq String.compare (qgrams ~q s)

let substring_qgrams ~q s =
  if q <= 0 then invalid_arg "Strdist.substring_qgrams: q <= 0";
  let n = String.length s in
  if n < q then []
  else List.sort_uniq String.compare (List.init (n - q + 1) (fun i -> String.sub s i q))

let count_filter_threshold ~q ~len_a ~len_b d = max len_a len_b + q - 1 - (d * q)

(* Rarity heuristic for rarest-gram-first ordering when no frequency
   statistics are available: padding-anchored grams ("##k", "e$$") are
   shared by every value with the same first/last characters, interior
   grams only by values containing that exact substring — so fewer
   padding characters first, then lexicographic for determinism. *)
let pad_chars g = String.fold_left (fun n c -> if c = '#' || c = '$' then n + 1 else n) 0 g

let prefix_grams ?freq ~q ~d pattern =
  let grams = qgrams ~q pattern in
  let mult = Hashtbl.create 16 in
  List.iter
    (fun g -> Hashtbl.replace mult g (1 + Option.value ~default:0 (Hashtbl.find_opt mult g)))
    grams;
  let distinct = List.sort_uniq String.compare grams in
  let rarity g = match freq with Some f -> f g | None -> pad_chars g in
  let ordered =
    List.stable_sort (fun a b -> Int.compare (rarity a) (rarity b)) distinct
  in
  (* Count-filter lower bound: a string within edit distance [d] shares
     at least |qgrams pattern| - d*q gram occurrences with the pattern,
     so it can miss at most d*q of them. Selecting distinct grams until
     their pattern-multiset multiplicity sums to d*q + 1 guarantees every
     true match holds (hence is indexed under) at least one selected
     gram. *)
  let needed = (d * q) + 1 in
  let rec take acc covered = function
    | _ when covered >= needed -> List.rev acc
    | [] -> List.rev acc (* whole gram set selected: bound not reachable *)
    | g :: rest -> take (g :: acc) (covered + Hashtbl.find mult g) rest
  in
  take [] 0 ordered

let common_gram_count ~q a b =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun g -> Hashtbl.replace tbl g (1 + Option.value ~default:0 (Hashtbl.find_opt tbl g)))
    (qgrams ~q a);
  List.fold_left
    (fun acc g ->
      match Hashtbl.find_opt tbl g with
      | Some n when n > 0 ->
        Hashtbl.replace tbl g (n - 1);
        acc + 1
      | _ -> acc)
    0 (qgrams ~q b)

let passes_count_filter ~q a b d =
  let thr = count_filter_threshold ~q ~len_a:(String.length a) ~len_b:(String.length b) d in
  thr <= 0 || common_gram_count ~q a b >= thr
