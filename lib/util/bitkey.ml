(* Two representations behind one immutable interface:

   - [S]: bitstrings of up to 64 bits, packed into two plain OCaml ints
     ([hi] holds bits 0..31 in its low 32 bits left-aligned, [lo] holds
     bits 32..63 the same way). Every P-Grid trie path and every routing
     decision lives here: [get]/[compare]/[common_prefix_len]/[equal]
     are a handful of integer ops with no memory traffic beyond the one
     record, which is what lets the simulator route millions of events
     per second.
   - [W]: longer bitstrings (the 256-bit order-preserving hash keys),
     packed MSB-first into bytes: bit [i] lives in byte [i/8] at bit
     position [7 - i mod 8].

   Normalization invariant: [len <= 64] is always [S], [len > 64] is
   always [W] — so [equal]/[hash] never have to compare across
   representations. In both, bits beyond [len] are kept zero, which
   makes whole-word/whole-byte comparison valid. *)

type t =
  | S of { len : int; hi : int; lo : int }
  | W of { len : int; data : Bytes.t }

let empty = S { len = 0; hi = 0; lo = 0 }

let length = function S { len; _ } -> len | W { len; _ } -> len

let bytes_for_bits n = (n + 7) / 8

(* Mask keeping the top [k] bits of a 32-bit word, 0 <= k <= 32. *)
let mask_top k = if k <= 0 then 0 else 0xFFFFFFFF lxor (0xFFFFFFFF lsr k)

(* Bit [i] of an [S], no bounds check: i in [0, 64). *)
let s_get hi lo i =
  if i < 32 then (hi lsr (31 - i)) land 1 <> 0 else (lo lsr (63 - i)) land 1 <> 0

let get t i =
  if i < 0 || i >= length t then invalid_arg "Bitkey.get: index out of bounds";
  match t with
  | S { hi; lo; _ } -> s_get hi lo i
  | W { data; _ } ->
    let byte = Char.code (Bytes.get data (i / 8)) in
    byte land (1 lsl (7 - (i mod 8))) <> 0

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)

let unsafe_set data i b =
  let idx = i / 8 in
  let mask = 1 lsl (7 - (i mod 8)) in
  let cur = Char.code (Bytes.get data idx) in
  let v = if b then cur lor mask else cur land lnot mask in
  Bytes.set data idx (Char.chr v)

let make_zeroed len = Bytes.make (bytes_for_bits len) '\000'

(* Generic constructor from a bit producer; dispatches to the packed
   representation. Only non-hot operations (concat, drop, parsing) go
   through here. *)
let init len f =
  if len <= 64 then begin
    let hi = ref 0 and lo = ref 0 in
    for i = 0 to min 31 (len - 1) do
      if f i then hi := !hi lor (1 lsl (31 - i))
    done;
    for i = 32 to len - 1 do
      if f i then lo := !lo lor (1 lsl (63 - i))
    done;
    S { len; hi = !hi; lo = !lo }
  end
  else begin
    let data = make_zeroed len in
    for i = 0 to len - 1 do
      if f i then unsafe_set data i true
    done;
    W { len; data }
  end

(* The i-th byte of the packed bit pattern, valid for any representation;
   used by the mixed-width comparison loops. *)
let byte_at t k =
  match t with
  | S { hi; lo; _ } ->
    if k < 4 then (hi lsr (8 * (3 - k))) land 0xFF else (lo lsr (8 * (7 - k))) land 0xFF
  | W { data; _ } -> Char.code (Bytes.get data k)

(* ------------------------------------------------------------------ *)
(* Structural operations                                               *)

let append_bit t b =
  match t with
  | S { len; hi; lo } when len < 32 ->
    S { len = len + 1; hi = (if b then hi lor (1 lsl (31 - len)) else hi); lo }
  | S { len; hi; lo } when len < 64 ->
    S { len = len + 1; hi; lo = (if b then lo lor (1 lsl (63 - len)) else lo) }
  | t ->
    let len = length t in
    init (len + 1) (fun i -> if i = len then b else get t i)

let take t n =
  if n < 0 || n > length t then invalid_arg "Bitkey.take";
  if n = length t then t
  else begin
    match t with
    | S { hi; lo; _ } ->
      if n <= 32 then S { len = n; hi = hi land mask_top n; lo = 0 }
      else S { len = n; hi; lo = lo land mask_top (n - 32) }
    | W { data; _ } when n > 64 ->
      let ndata = make_zeroed n in
      Bytes.blit data 0 ndata 0 (bytes_for_bits n);
      (* Clear trailing bits of the last byte beyond position n. *)
      let rem = n mod 8 in
      if rem <> 0 then begin
        let last = bytes_for_bits n - 1 in
        let keep = 0xFF lxor (0xFF lsr rem) in
        Bytes.set ndata last (Char.chr (Char.code (Bytes.get ndata last) land keep))
      end;
      W { len = n; data = ndata }
    | W _ as t ->
      (* Truncation crosses the representation boundary: repack as S. *)
      init n (fun i -> get t i)
  end

let drop t n =
  if n < 0 || n > length t then invalid_arg "Bitkey.drop";
  init (length t - n) (fun i -> get t (n + i))

let concat a b =
  let la = length a and lb = length b in
  init (la + lb) (fun i -> if i < la then get a i else get b (i - la))

let flip t i =
  if i < 0 || i >= length t then invalid_arg "Bitkey.flip";
  match t with
  | S { len; hi; lo } ->
    if i < 32 then S { len; hi = hi lxor (1 lsl (31 - i)); lo }
    else S { len; hi; lo = lo lxor (1 lsl (63 - i)) }
  | W { len; data } ->
    let data = Bytes.copy data in
    unsafe_set data i (not (get t i));
    W { len; data }

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)

(* Leading zeros of a nonzero value's low 32 bits. *)
let clz32 x =
  let n = ref 0 and x = ref (x land 0xFFFFFFFF) in
  if !x land 0xFFFF0000 = 0 then begin
    n := !n + 16;
    x := !x lsl 16
  end;
  if !x land 0xFF000000 = 0 then begin
    n := !n + 8;
    x := !x lsl 8
  end;
  if !x land 0xF0000000 = 0 then begin
    n := !n + 4;
    x := !x lsl 4
  end;
  if !x land 0xC0000000 = 0 then begin
    n := !n + 2;
    x := !x lsl 2
  end;
  if !x land 0x80000000 = 0 then n := !n + 1;
  !n

let common_prefix_len a b =
  let n = min (length a) (length b) in
  match (a, b) with
  | S sa, S sb ->
    let xh = sa.hi lxor sb.hi in
    (* [lor 1] bounds the low-word clz at 31 when both words agree; the
       [min n] then yields [n], the right answer for equal patterns. *)
    let p = if xh <> 0 then clz32 xh else 32 + clz32 ((sa.lo lxor sb.lo) lor 1) in
    min p n
  | _ ->
    let nb = bytes_for_bits n in
    let rec go k =
      if k >= nb then n
      else
        let x = byte_at a k lxor byte_at b k in
        if x = 0 then go (k + 1) else min n ((8 * k) + (clz32 x - 24))
    in
    go 0

let is_prefix ~prefix t =
  length prefix <= length t && common_prefix_len prefix t = length prefix

let compare a b =
  match (a, b) with
  | S sa, S sb ->
    (* Packed words are nonnegative ints < 2^32, so int comparison equals
       lexicographic bit comparison; trailing zeros make the shared
       suffix neutral, and equal patterns fall back to length (a proper
       prefix sorts before its extensions). *)
    let c = Stdlib.compare sa.hi sb.hi in
    if c <> 0 then c
    else
      let c = Stdlib.compare sa.lo sb.lo in
      if c <> 0 then c else Stdlib.compare sa.len sb.len
  | _ ->
    let la = length a and lb = length b in
    let nb = bytes_for_bits (min la lb) in
    let rec go k =
      if k >= nb then Stdlib.compare la lb
      else
        let c = Stdlib.compare (byte_at a k) (byte_at b k) in
        if c <> 0 then c else go (k + 1)
    in
    go 0

let equal a b =
  match (a, b) with
  | S sa, S sb -> sa.len = sb.len && sa.hi = sb.hi && sa.lo = sb.lo
  | W wa, W wb -> wa.len = wb.len && Bytes.equal wa.data wb.data
  | _ -> false (* normalization: representations never share a length *)

let hash t =
  match t with
  | S { len; hi; lo } -> Hashtbl.hash (len, hi, lo)
  | W { len; data } -> Hashtbl.hash (len, Bytes.to_string data)

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)

let of_string s =
  let len = String.length s in
  String.iter
    (function '0' | '1' -> () | _ -> invalid_arg "Bitkey.of_string: expected only '0'/'1'")
    s;
  init len (fun i -> s.[i] = '1')

let to_string t = String.init (length t) (fun i -> if get t i then '1' else '0')

let pp fmt t = Format.fprintf fmt "%s" (to_string t)

let of_int64 ~width x =
  if width < 0 || width > 64 then invalid_arg "Bitkey.of_int64: width";
  let hi = Int64.to_int (Int64.shift_right_logical x 32) in
  let lo = Int64.to_int (Int64.logand x 0xFFFFFFFFL) in
  if width <= 32 then S { len = width; hi = hi land mask_top width; lo = 0 }
  else S { len = width; hi; lo = lo land mask_top (width - 32) }

let to_int64 t =
  if length t > 64 then invalid_arg "Bitkey.to_int64: too long";
  match t with
  | S { hi; lo; _ } -> Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)
  | W _ -> assert false (* normalization: len <= 64 is always S *)

let successor t =
  (* Find the last zero bit, set it, clear everything after. *)
  let len = length t in
  let rec last_zero i = if i < 0 then None else if get t i then last_zero (i - 1) else Some i in
  match last_zero (len - 1) with
  | None -> None
  | Some i -> Some (init len (fun j -> if j < i then get t j else j = i))

let of_bytes_prefix s ~width =
  if width < 0 then invalid_arg "Bitkey.of_bytes_prefix: width";
  if width <= 64 then begin
    (* Pack up to 8 source bytes straight into the two halves. *)
    let byte k = if k < String.length s then Char.code s.[k] else 0 in
    let word a =
      (byte a lsl 24) lor (byte (a + 1) lsl 16) lor (byte (a + 2) lsl 8) lor byte (a + 3)
    in
    let hi = word 0 and lo = word 4 in
    if width <= 32 then S { len = width; hi = hi land mask_top width; lo = 0 }
    else S { len = width; hi; lo = lo land mask_top (width - 32) }
  end
  else begin
    let data = make_zeroed width in
    let avail = String.length s * 8 in
    (* [n] is a multiple of 8 whenever the source is shorter than [width]
       (strings hold whole bytes), so only truncation can leave stray bits
       in the last byte; they are cleared below. *)
    let n = min width avail in
    Bytes.blit_string s 0 data 0 (bytes_for_bits n);
    let rem_w = width mod 8 in
    if rem_w <> 0 then begin
      let last = bytes_for_bits width - 1 in
      let keep = 0xFF lxor (0xFF lsr rem_w) in
      Bytes.set data last (Char.chr (Char.code (Bytes.get data last) land keep))
    end;
    W { len = width; data }
  end

let random rng n = init n (fun _ -> Rng.bool rng ~p:0.5)

let pad t ~width b =
  let len = length t in
  if len >= width then t else init width (fun i -> if i < len then get t i else b)

let enumerate n =
  if n < 0 || n > 20 then invalid_arg "Bitkey.enumerate: n out of range";
  let count = 1 lsl n in
  List.init count (fun v -> S { len = n; hi = (v lsl (32 - n)) land 0xFFFFFFFF; lo = 0 })

let fold_bits f init_acc t =
  let acc = ref init_acc in
  for i = 0 to length t - 1 do
    acc := f !acc (get t i)
  done;
  !acc
