type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. float_of_int (List.length xs - 1))

let percentile xs p =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | _ ->
    let arr = Array.of_list xs in
    Array.sort Float.compare arr;
    let n = Array.length arr in
    if n = 1 then arr.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
    end

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ ->
    {
      n = List.length xs;
      mean = mean xs;
      stddev = stddev xs;
      min = List.fold_left Float.min infinity xs;
      max = List.fold_left Float.max neg_infinity xs;
      p50 = percentile xs 50.0;
      p90 = percentile xs 90.0;
      p99 = percentile xs 99.0;
    }

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%.2f sd=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f" s.n s.mean
    s.stddev s.p50 s.p90 s.p99 s.max

module Online = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = t.mean
  let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))
end

let linear_fit xys =
  match xys with
  | [] | [ _ ] -> invalid_arg "Stats.linear_fit: need >= 2 points"
  | _ ->
    let n = float_of_int (List.length xys) in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 xys in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 xys in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 xys in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 xys in
    let denom = (n *. sxx) -. (sx *. sx) in
    let slope = if Float.equal denom 0.0 then 0.0 else ((n *. sxy) -. (sx *. sy)) /. denom in
    let intercept = (sy -. (slope *. sx)) /. n in
    let ymean = sy /. n in
    let ss_tot = List.fold_left (fun a (_, y) -> a +. ((y -. ymean) ** 2.0)) 0.0 xys in
    let ss_res =
      List.fold_left (fun a (x, y) -> a +. ((y -. (slope *. x) -. intercept) ** 2.0)) 0.0 xys
    in
    let r2 = if Float.equal ss_tot 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
    (slope, intercept, r2)
