(** Bounded top-k selection.

    A size-capped max-heap keeping the [k] smallest elements under a
    caller-supplied comparator, in O(R log k) time and O(k) space for R
    streamed elements. Ties rank by arrival order, so the result is
    exactly the first [k] elements of a stable full sort — origin-side
    ranking ({!Unistore_qproc.Ranking.top_n}) and in-network truncation
    ({!Unistore_triple.Tstore.top_n_by_attr}) share this implementation
    and agree with their sort-based references element for element. *)

type 'a t

(** [create ~cmp k]: an empty selector keeping the [k] smallest under
    [cmp]. [k <= 0] keeps nothing. *)
val create : cmp:('a -> 'a -> int) -> int -> 'a t

(** Elements currently held (at most the capacity). *)
val length : 'a t -> int

val capacity : 'a t -> int

(** Offer one element: kept iff it ranks among the [k] smallest seen so
    far (equal elements rank in arrival order). *)
val add : 'a t -> 'a -> unit

val add_list : 'a t -> 'a list -> unit

(** The kept elements, ascending under [(cmp, arrival)] — identical to
    [List.stable_sort cmp xs] truncated to the capacity. *)
val to_sorted_list : 'a t -> 'a list

(** One-shot convenience: [smallest ~cmp n xs]. *)
val smallest : cmp:('a -> 'a -> int) -> int -> 'a list -> 'a list
