(** Deterministic views of [Hashtbl] contents.

    [Hashtbl.fold]/[Hashtbl.iter] visit bindings in hash-bucket order —
    an order that depends on key hashes and insertion history, not on
    any property of the data. Any such order that escapes into protocol
    behavior (message contents, send order, diagnostics) is a latent
    violation of the simulator's determinism contract (same seed,
    byte-identical trace — see DESIGN.md, "The determinism contract").

    These helpers are the sanctioned way to get table contents out in a
    reproducible order: they snapshot the bindings and sort by key.
    [srclint]'s [unordered-iteration] rule recognizes them (and
    [|> List.sort]-style pipelines) as normalized; a bare escaping
    [Hashtbl.fold] is flagged.

    Like [Hashtbl.fold], bindings shadowed by [Hashtbl.add] are all
    included; the codebase uses [Hashtbl.replace] throughout, so keys
    are unique in practice. The default comparator is the polymorphic
    [compare]: fine for the string/int/tuple-of-those keys used here,
    pass [~cmp] for anything with a custom order. *)

val sorted_bindings : ?cmp:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> ('a * 'b) list
(** All bindings, sorted by key. *)

val sorted_keys : ?cmp:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> 'a list
(** All keys, sorted. *)

val sorted_iter : ?cmp:('a -> 'a -> int) -> ('a -> 'b -> unit) -> ('a, 'b) Hashtbl.t -> unit
(** [sorted_iter f tbl] applies [f] to every binding in ascending key
    order. The bindings are snapshotted first, so [f] may mutate [tbl]. *)
