type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r b in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int b) 1L then draw ()
    else Int64.to_int v
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t =
  (* 53 uniform bits mapped to [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float_in t lo hi = lo +. ((hi -. lo) *. float t)

let bool t ~p = float t < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let sample t k l =
  match l with
  | [] -> []
  | first :: _ when k > 0 ->
    let reservoir = Array.make k first in
    let n = ref 0 in
    let add x =
      if !n < k then reservoir.(!n) <- x
      else begin
        let j = int t (!n + 1) in
        if j < k then reservoir.(j) <- x
      end;
      incr n
    in
    List.iter add l;
    Array.to_list (Array.sub reservoir 0 (min k !n))
  | _ :: _ -> []

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle_list t l =
  let arr = Array.of_list l in
  shuffle t arr;
  Array.to_list arr

let exponential t ~mean =
  let u = 1.0 -. float t in
  -.mean *. log u

let gaussian t =
  let rec nonzero () =
    let u = float t in
    if Float.equal u 0.0 then nonzero () else u
  in
  let u1 = nonzero () and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let lognormal t ~mu ~sigma = exp (mu +. (sigma *. gaussian t))
