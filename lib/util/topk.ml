(* Bounded top-k selection: a size-capped binary max-heap that keeps the
   k smallest elements seen so far under a caller-supplied comparator.

   Elements are tagged with their arrival index and ordered by
   (cmp, arrival): the heap's contents and the sorted output are exactly
   the first k elements of a stable full sort, so callers can swap
   sort-then-truncate for this without changing a single result row.
   Streaming R elements costs O(R log k) and O(k) space instead of the
   O(R log R) / O(R) of the full sort. *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  cap : int;
  mutable heap : ('a * int) array;  (* max-heap on (cmp, arrival) *)
  mutable size : int;
  mutable arrivals : int;
}

let create ~cmp cap = { cmp; cap = max 0 cap; heap = [||]; size = 0; arrivals = 0 }
let length t = t.size
let capacity t = t.cap

(* Lexicographic (cmp, arrival): later arrivals of equal elements rank
   greater, so they are the first evicted — stable-sort semantics. *)
let gt t (a, ia) (b, ib) =
  let c = t.cmp a b in
  if c <> 0 then c > 0 else ia > ib

let swap t i j =
  let x = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- x

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if gt t t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let largest = ref i in
  if l < t.size && gt t t.heap.(l) t.heap.(!largest) then largest := l;
  if r < t.size && gt t t.heap.(r) t.heap.(!largest) then largest := r;
  if !largest <> i then begin
    swap t i !largest;
    sift_down t !largest
  end

let add t x =
  if t.cap > 0 then begin
    let tagged = (x, t.arrivals) in
    t.arrivals <- t.arrivals + 1;
    if t.size < t.cap then begin
      if t.size = Array.length t.heap then begin
        let grown = Array.make (max 4 (min t.cap (2 * max 1 t.size))) tagged in
        Array.blit t.heap 0 grown 0 t.size;
        t.heap <- grown
      end;
      t.heap.(t.size) <- tagged;
      t.size <- t.size + 1;
      sift_up t (t.size - 1)
    end
    else if gt t t.heap.(0) tagged then begin
      (* Strictly smaller than the current worst (ties lose on arrival
         order): evict the root. *)
      t.heap.(0) <- tagged;
      sift_down t 0
    end
  end
  else t.arrivals <- t.arrivals + 1

let add_list t xs = List.iter (add t) xs

let to_sorted_list t =
  let snapshot = Array.sub t.heap 0 t.size in
  Array.sort (fun (a, ia) (b, ib) ->
      let c = t.cmp a b in
      if c <> 0 then c else Int.compare ia ib)
    snapshot;
  Array.to_list (Array.map fst snapshot)

let smallest ~cmp n xs =
  let t = create ~cmp n in
  add_list t xs;
  to_sorted_list t
