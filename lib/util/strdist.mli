(** String similarity: edit distance and q-grams.

    UniStore's similarity operators ([edist] filters, similarity joins) are
    built on Levenshtein distance; the distributed q-gram index of
    Karnstedt et al. (NetDB'06) turns an edit-distance predicate into a
    small set of exact DHT lookups plus a count filter. *)

(** [levenshtein a b] is the (unit-cost) edit distance between [a] and
    [b]. O(|a|*|b|) time, O(min) space. *)
val levenshtein : string -> string -> int

(** [within_distance a b d] decides [levenshtein a b <= d] using a banded
    computation that exits early; much faster for small [d]. *)
val within_distance : string -> string -> int -> bool

(** [qgrams ~q s] is the list of overlapping [q]-grams of [s], extended
    with [q-1] leading ['#'] and trailing ['$'] padding characters (the
    standard positional-padding used for q-gram filtering). A gram may
    appear multiple times. *)
val qgrams : q:int -> string -> string list

(** [distinct_qgrams ~q s] is {!qgrams} deduplicated, sorted. *)
val distinct_qgrams : q:int -> string -> string list

(** [substring_qgrams ~q s] is the deduplicated list of {e unpadded}
    [q]-grams of [s] — every one of them occurs in the padded gram set of
    any string containing [s], which is what makes substring search via a
    q-gram index complete. Empty when [s] is shorter than [q]. *)
val substring_qgrams : q:int -> string -> string list

(** [count_filter_threshold ~q ~len_a ~len_b d] is the minimum number of
    common q-grams two strings of the given lengths must share to possibly
    be within edit distance [d]: [max(len_a,len_b) + q - 1 - d*q] (can be
    [<= 0], meaning the filter prunes nothing). *)
val count_filter_threshold : q:int -> len_a:int -> len_b:int -> int -> int

(** [common_gram_count ~q a b] counts common q-grams (multiset
    intersection size) of [a] and [b]. *)
val common_gram_count : q:int -> string -> string -> int

(** [passes_count_filter ~q a b d]: necessary condition for
    [levenshtein a b <= d]; used to prune candidates before the exact
    verification. *)
val passes_count_filter : q:int -> string -> string -> int -> bool

(** [prefix_grams ?freq ~q ~d pattern]: the minimal rarest-first subset
    of [pattern]'s distinct q-grams that must be probed for a complete
    edit-distance-[d] candidate set — the count-filter lower bound says a
    true match misses at most [d*q] of the pattern's gram occurrences, so
    probing distinct grams whose multiplicities sum to [d*q + 1]
    guarantees every match is indexed under at least one probed gram.
    Grams are chosen rarest first: by [freq] when given (e.g. gossiped
    posting sizes), else by a padding heuristic (interior grams before
    padding-anchored ones). Returns all distinct grams when the bound is
    not reachable (the caller should then fall back to scanning). *)
val prefix_grams : ?freq:(string -> int) -> q:int -> d:int -> string -> string list
