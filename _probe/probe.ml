open Unistore_util
let () =
  let k = Bitkey.of_string (String.make 64 '1') in
  Printf.printf "cpl(k,k) len64 = %d (want 64)\n" (Bitkey.common_prefix_len k k);
  Printf.printf "is_prefix k k = %b (want true)\n" (Bitkey.is_prefix ~prefix:k k);
  let k0 = Bitkey.of_string (String.make 64 '0') in
  Printf.printf "cpl(k0,k0) = %d (want 64)\n" (Bitkey.common_prefix_len k0 k0);
  let a = Bitkey.of_string (String.make 63 '0') in
  Printf.printf "cpl(a63,a63) = %d (want 63)\n" (Bitkey.common_prefix_len a a)
