# Convenience entry points. Everything is plain dune underneath; these
# targets just name the two workflows every PR runs.

.PHONY: all check test bench bench-baseline clean

all: check

# Tier-1 gate: full build plus the alcotest/qcheck suites under test/.
check:
	dune build && dune runtest

test: check

# Full experiment harness (all E1..E14 + microbenchmarks).
bench:
	dune exec bench/main.exe

# Regenerate the committed performance baseline (BENCH_core.json).
# Run after any change that might move routing, range-query or query
# latency numbers, and commit the diff. See EXPERIMENTS.md, section
# "Baseline numbers".
bench-baseline:
	dune exec bench/main.exe -- core

clean:
	dune clean
