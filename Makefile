# Convenience entry points. Everything is plain dune underneath; these
# targets just name the two workflows every PR runs.

.PHONY: all check test lint bench bench-baseline bench-bulk bench-smoke clean

all: check

# Tier-1 gate: full build plus the alcotest/qcheck suites under test/.
check:
	dune build && dune runtest

test: check

# Static-analysis gate (lib/analysis): strict-warning build, then the
# full analyzer suite against live deployments on both substrates —
# semantic-check the demo workload, lint a recorded message trace
# against the metrics registry, audit overlay invariants — plus a smoke
# check that `query --check` rejects an unsatisfiable query with a
# non-zero exit.
lint:
	dune build
	dune exec bin/unistore_cli.exe -- lint
	dune exec bin/unistore_cli.exe -- lint --overlay chord
	@if dune exec bin/unistore_cli.exe -- query --check \
	  "SELECT ?v WHERE { (?a,'age',?v) FILTER ?v > 10 AND ?v < 5 }" >/dev/null 2>&1; \
	then echo "FAIL: --check accepted an unsatisfiable query"; exit 1; \
	else echo "--check rejects unsatisfiable queries: OK"; fi

# Full experiment harness (all E1..E14 + microbenchmarks).
bench:
	dune exec bench/main.exe

# Regenerate the committed performance baseline (BENCH_core.json).
# Run after any change that might move routing, range-query or query
# latency numbers, and commit the diff. See EXPERIMENTS.md, section
# "Baseline numbers".
bench-baseline:
	dune exec bench/main.exe -- core

# Regenerate the committed batched-vs-unbatched numbers
# (BENCH_bulk.json). Run after any change to the bulk-operation
# pipeline (lib/pgrid batching, multi-key probes, range aggregation)
# and commit the diff. See EXPERIMENTS.md, section "Bulk operations".
bench-bulk:
	dune exec bench/main.exe -- bulk

# CI bench gate: the small cached-vs-uncached and batched-vs-unbatched
# runs. Fails if the caching subsystem or the bulk-operation pipeline
# stops engaging, or stops paying for itself (e.g. the batched bulk
# load drops below a 40% message reduction). The committed full-size
# numbers live in BENCH_cache.json and BENCH_bulk.json.
bench-smoke:
	dune exec bench/main.exe -- cache-smoke bulk-smoke

clean:
	dune clean
