# Convenience entry points. Everything is plain dune underneath; these
# targets just name the two workflows every PR runs.

.PHONY: all check test test-faults test-store lint lint-src bench bench-baseline bench-bulk bench-churn bench-scale bench-traffic bench-rank bench-store bench-smoke clean

all: check

# Tier-1 gate: full build, the alcotest/qcheck suites under test/, and
# the source-level determinism linter.
check:
	dune build && dune runtest && dune build @srclint

test: check

# Just the churn/fault-injection suites: the deterministic fault
# driver, retry/failover/partial-result behavior, self-healing repair,
# the failover property test and the fault-aware linter checks. All
# randomness in these flows from explicit scenario seeds — see
# EXPERIMENTS.md, section "Churn", for the flaky-test policy.
test-faults:
	dune exec test/test_faults.exe
	dune exec test/test_pgrid.exe -- test failover

# Just the storage-backend suites: the differential harness replaying
# every backend (hash/log/packed) against the list model, the log
# torn-tail crash-restart tests, the 100k-triple packed-compression
# assertion and the overlay-level crash/repair recall test. Log files
# are written under the dune sandbox and removed by the tests
# themselves, so the run stays hermetic.
test-store:
	dune exec test/test_store.exe

# Static-analysis gate (lib/analysis): strict-warning build, then the
# full analyzer suite against live deployments on both substrates —
# semantic-check the demo workload, lint a recorded message trace
# against the metrics registry, audit overlay invariants — plus a smoke
# check that `query --check` rejects an unsatisfiable query with a
# non-zero exit.
lint:
	dune build
	dune exec bin/unistore_cli.exe -- lint
	dune exec bin/unistore_cli.exe -- lint --overlay chord
	@if dune exec bin/unistore_cli.exe -- query --check \
	  "SELECT ?v WHERE { (?a,'age',?v) FILTER ?v > 10 AND ?v < 5 }" >/dev/null 2>&1; \
	then echo "FAIL: --check accepted an unsatisfiable query"; exit 1; \
	else echo "--check rejects unsatisfiable queries: OK"; fi

# Source-level determinism & protocol-exhaustiveness linter over the
# repo's own OCaml tree (lib/ and bin/): unordered hashtable iteration
# escaping unsorted, ambient randomness/time outside lib/util/rng.ml,
# polymorphic compare at float/Bitkey positions, and protocol-table
# drift (message constructors vs size/kind/dispatch arms and pending-op
# registrations). Suppress a deliberate finding with
# `(* srclint: allow <rule> *)` on the offending line. See DESIGN.md,
# section "The determinism contract".
lint-src:
	dune build @srclint

# Full experiment harness (all E1..E14 + microbenchmarks).
bench:
	dune exec bench/main.exe

# Regenerate the committed performance baseline (BENCH_core.json).
# Run after any change that might move routing, range-query or query
# latency numbers, and commit the diff. See EXPERIMENTS.md, section
# "Baseline numbers".
bench-baseline:
	dune exec bench/main.exe -- core

# Regenerate the committed batched-vs-unbatched numbers
# (BENCH_bulk.json). Run after any change to the bulk-operation
# pipeline (lib/pgrid batching, multi-key probes, range aggregation)
# and commit the diff. See EXPERIMENTS.md, section "Bulk operations".
bench-bulk:
	dune exec bench/main.exe -- bulk

# Regenerate the committed churn robustness numbers (BENCH_churn.json):
# the retry/failover arm vs the no-retry baseline under 0/10/30% churn.
# Run after any change to the retry policy, the shower wave-retry logic
# or the fault driver, and commit the diff. See EXPERIMENTS.md, section
# "Churn".
bench-churn:
	dune exec bench/main.exe -- churn

# Regenerate the committed kernel-scale numbers (BENCH_scale.json):
# overlay build time, resident bytes/peer and scheduler events/sec at
# 100/1k/10k/100k peers. Run after any change to the simulation kernel
# (lib/sim, Bitkey, the overlay hot paths) and commit the diff. Times
# in this file are REAL seconds on the build host, so expect machine-
# to-machine variance; the trends, not the absolutes, are the contract.
# See EXPERIMENTS.md, section "Scale".
bench-scale:
	dune exec bench/main.exe -- scale

# Regenerate the committed heavy-traffic numbers (BENCH_traffic.json):
# the adaptive-balancing arm vs the static no_balancing baseline under
# an open-loop Zipf hot-spot flash crowd with per-peer service queues.
# Run after any change to the traffic engine (lib/traffic), the
# queueing model (lib/sim), the EWMA deadline / hot-replication /
# serving-set logic (lib/pgrid) or the balance defaults, and commit
# the diff. See EXPERIMENTS.md, section "Traffic".
bench-traffic:
	dune exec bench/main.exe -- traffic

# Regenerate the committed ranking/similarity numbers (BENCH_rank.json):
# the optimized fast paths (budgeted top-N traversal, leaf-local partial
# skylines, count-filter gram pruning, batched gram fetches) vs the
# naive arm, raced on both overlays at three network sizes. Run after
# any change to the ranking operators (lib/qproc/ranking, the skyline
# pushdown in exec/engine), the similarity paths (lib/triple/tstore,
# lib/util/strdist, lib/util/topk) or the rank cost calibration, and
# commit the diff. See EXPERIMENTS.md, section "Ranking & similarity".
bench-rank:
	dune exec bench/main.exe -- rank

# Regenerate the committed storage-backend numbers (BENCH_store.json):
# bytes/triple, insert/lookup/scan throughput and crash-restart recall
# for the hash, log and packed backends on a 100k-triple Zipf dataset.
# Run after any change to the store backends (lib/pgrid/store_intf,
# backend_hash, backend_log, backend_packed, the Store facade) or the
# memory-accounting model, and commit the diff. See EXPERIMENTS.md,
# section "Storage".
bench-store:
	dune exec bench/main.exe -- store

# CI bench gate: the small cached-vs-uncached, batched-vs-unbatched,
# churn, kernel-scale and heavy-traffic runs. Fails if the caching subsystem or the
# bulk-operation pipeline stops engaging or stops paying for itself
# (e.g. the batched bulk load drops below a 40% message reduction), if
# the retry arm no longer beats the no-retry baseline under churn, or
# if kernel throughput falls below the scale-smoke floor / wall-clock
# budget (an O(n) scan creeping back onto a hot path), or if adaptive
# load balancing stops strictly beating the static baseline on served
# throughput and p99 under a flash crowd (traffic-smoke also asserts
# both arms return byte-identical answers), or if the ranking/similarity
# fast paths stop engaging (rank-smoke: fewer than two operators with a
# 30% message-or-byte reduction on P-Grid, no leaf-dropped skyline
# bytes, or gram pruning saving nothing), or if the storage backends
# diverge (store-smoke: a backend losing triples, packed no longer
# strictly below hash on bytes/triple, or the log failing to replay).
# The committed full-size numbers live in BENCH_cache.json,
# BENCH_bulk.json, BENCH_churn.json, BENCH_scale.json,
# BENCH_traffic.json, BENCH_rank.json and BENCH_store.json.
bench-smoke:
	dune exec bench/main.exe -- cache-smoke bulk-smoke churn-smoke scale-smoke traffic-smoke rank-smoke store-smoke

clean:
	dune clean
