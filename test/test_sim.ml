(* Tests for the discrete-event simulator (unistore_sim). *)

open Unistore_util
module Pqueue = Unistore_sim.Pqueue
module Sim = Unistore_sim.Sim
module Latency = Unistore_sim.Latency
module Net = Unistore_sim.Net
module Trace = Unistore_sim.Trace

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Pqueue *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun p -> Pqueue.push q ~priority:p p) [ 3.0; 1.0; 2.0; 0.5; 2.5 ];
  let out = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (_, v) ->
      out := v :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.(list (float 0.0)) "sorted" [ 0.5; 1.0; 2.0; 2.5; 3.0 ] (List.rev !out)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q ~priority:1.0 v) [ "a"; "b"; "c" ];
  let pop () = match Pqueue.pop q with Some (_, v) -> v | None -> "?" in
  check Alcotest.string "fifo a" "a" (pop ());
  check Alcotest.string "fifo b" "b" (pop ());
  check Alcotest.string "fifo c" "c" (pop ())

let prop_pqueue_sorted =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"pqueue: pops are sorted"
       QCheck2.Gen.(list_size (0 -- 100) (float_bound_inclusive 1000.0))
       (fun prios ->
         let q = Pqueue.create () in
         List.iter (fun p -> Pqueue.push q ~priority:p p) prios;
         let rec drain acc =
           match Pqueue.pop q with Some (p, _) -> drain (p :: acc) | None -> List.rev acc
         in
         let out = drain [] in
         List.sort Float.compare prios = out))

let test_pqueue_size () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Pqueue.push q ~priority:1.0 ();
  check Alcotest.int "size 1" 1 (Pqueue.size q);
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q)

(* ------------------------------------------------------------------ *)
(* Sim *)

let test_sim_time_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:10.0 (fun () -> log := "b" :: !log);
  Sim.schedule sim ~delay:5.0 (fun () -> log := "a" :: !log);
  Sim.schedule sim ~delay:20.0 (fun () -> log := "c" :: !log);
  Sim.run_all sim;
  check Alcotest.(list string) "order" [ "a"; "b"; "c" ] (List.rev !log);
  check (Alcotest.float 1e-9) "clock" 20.0 (Sim.now sim)

let test_sim_nested_scheduling () =
  let sim = Sim.create () in
  let fired = ref 0.0 in
  Sim.schedule sim ~delay:5.0 (fun () ->
      Sim.schedule sim ~delay:3.0 (fun () -> fired := Sim.now sim));
  Sim.run_all sim;
  check (Alcotest.float 1e-9) "nested at 8" 8.0 !fired

let test_sim_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    Sim.schedule sim ~delay:1.0 (fun () -> incr count)
  done;
  let ok = Sim.run_until sim (fun () -> !count >= 5) in
  Alcotest.(check bool) "predicate met" true ok;
  check Alcotest.int "stopped at 5" 5 !count;
  Sim.run_all sim;
  check Alcotest.int "rest ran" 10 !count

let test_sim_run_until_drains () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:1.0 (fun () -> ());
  let ok = Sim.run_until sim (fun () -> false) in
  Alcotest.(check bool) "drained without predicate" false ok

let test_sim_run_for () =
  let sim = Sim.create () in
  let count = ref 0 in
  List.iter (fun d -> Sim.schedule sim ~delay:d (fun () -> incr count)) [ 1.0; 2.0; 3.0; 10.0 ];
  Sim.run_for sim ~duration:5.0;
  check Alcotest.int "within window" 3 !count;
  check (Alcotest.float 1e-9) "clock advanced" 5.0 (Sim.now sim);
  Sim.run_all sim;
  check Alcotest.int "all" 4 !count

let test_sim_negative_delay () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Sim.schedule: negative delay") (fun () ->
      Sim.schedule sim ~delay:(-1.0) (fun () -> ()))

(* ------------------------------------------------------------------ *)
(* Latency *)

let test_latency_constant () =
  let rng = Rng.create 1 in
  let l = Latency.create (Latency.Constant 7.0) ~n:10 ~rng in
  check (Alcotest.float 1e-9) "constant" 7.0 (Latency.sample l ~src:0 ~dst:1);
  check (Alcotest.float 1e-9) "expected" 7.0 (Latency.expected l)

let test_latency_uniform_bounds () =
  let rng = Rng.create 2 in
  let l = Latency.create (Latency.Uniform (5.0, 10.0)) ~n:10 ~rng in
  for _ = 1 to 500 do
    let d = Latency.sample l ~src:0 ~dst:1 in
    if d < 5.0 || d >= 10.0 then Alcotest.failf "uniform out of bounds: %f" d
  done

let test_latency_planetlab_positive () =
  let rng = Rng.create 3 in
  let l = Latency.create Latency.Planetlab ~n:50 ~rng in
  for s = 0 to 9 do
    for d = 0 to 9 do
      let v = Latency.sample l ~src:s ~dst:d in
      if v < 5.0 then Alcotest.failf "planetlab latency suspiciously low: %f" v;
      if v > 2000.0 then Alcotest.failf "planetlab latency suspiciously high: %f" v
    done
  done

let test_latency_planetlab_base_deterministic () =
  let rng = Rng.create 4 in
  let l = Latency.create Latency.Planetlab ~n:20 ~rng in
  check (Alcotest.float 1e-9) "base deterministic"
    (Latency.base l ~src:1 ~dst:2)
    (Latency.base l ~src:1 ~dst:2)

(* ------------------------------------------------------------------ *)
(* Net *)

let mknet ?(drop = 0.0) ?(model = Latency.Constant 1.0) n =
  let sim = Sim.create () in
  let rng = Rng.create 99 in
  let latency = Latency.create model ~n ~rng in
  let net = Net.create sim ~latency ~rng ~drop () in
  (sim, net)

let test_net_delivery () =
  let sim, net = mknet 2 in
  let inbox = ref [] in
  Net.register net 0 (fun ~src msg -> inbox := (src, msg) :: !inbox);
  Net.register net 1 (fun ~src msg -> inbox := (src, msg) :: !inbox);
  Net.send net ~src:0 ~dst:1 "hello";
  Sim.run_all sim;
  check Alcotest.(list (pair int string)) "delivered" [ (0, "hello") ] !inbox;
  check (Alcotest.float 1e-9) "took latency" 1.0 (Sim.now sim)

let test_net_dead_peer () =
  let sim, net = mknet 2 in
  let got = ref false in
  Net.register net 0 (fun ~src:_ _ -> ());
  Net.register net 1 (fun ~src:_ _ -> got := true);
  Net.kill net 1;
  Net.send net ~src:0 ~dst:1 "x";
  Sim.run_all sim;
  Alcotest.(check bool) "not delivered" false !got;
  let s = Net.stats net in
  check Alcotest.int "counted dead" 1 s.Net.to_dead;
  Net.revive net 1;
  Net.send net ~src:0 ~dst:1 "y";
  Sim.run_all sim;
  Alcotest.(check bool) "delivered after revive" true !got

let test_net_drop () =
  let sim, net = mknet ~drop:1.0 2 in
  let got = ref false in
  Net.register net 0 (fun ~src:_ _ -> ());
  Net.register net 1 (fun ~src:_ _ -> got := true);
  Net.send net ~src:0 ~dst:1 "x";
  Sim.run_all sim;
  Alcotest.(check bool) "dropped" false !got;
  check Alcotest.int "dropped count" 1 (Net.stats net).Net.dropped

let test_net_counters () =
  let sim, net = mknet 3 in
  List.iter (fun i -> Net.register net i (fun ~src:_ _ -> ())) [ 0; 1; 2 ];
  Net.send net ~src:0 ~dst:1 "a";
  Net.send net ~src:1 ~dst:2 "b";
  Sim.run_all sim;
  let s = Net.stats net in
  check Alcotest.int "sent" 2 s.Net.sent;
  check Alcotest.int "delivered" 2 s.Net.delivered;
  Net.reset_stats net;
  check Alcotest.int "reset" 0 (Net.stats net).Net.sent;
  check Alcotest.int "total survives reset" 2 (Net.total_sent net)

(* Fault hooks used by the fault-injection driver. *)

let test_net_set_drop () =
  let sim, net = mknet 2 in
  let got = ref 0 in
  Net.register net 0 (fun ~src:_ _ -> ());
  Net.register net 1 (fun ~src:_ _ -> incr got);
  Net.set_drop net 1.0;
  Net.send net ~src:0 ~dst:1 "lost";
  Sim.run_all sim;
  check Alcotest.int "lossy phase drops" 0 !got;
  Net.set_drop net 0.0;
  Net.send net ~src:0 ~dst:1 "through";
  Sim.run_all sim;
  check Alcotest.int "restored drop rate delivers" 1 !got;
  Alcotest.check_raises "probability validated" (Invalid_argument "Net.set_drop: probability out of [0,1]")
    (fun () -> Net.set_drop net 1.5)

let test_net_set_slow () =
  let sim, net = mknet 3 in
  List.iter (fun i -> Net.register net i (fun ~src:_ _ -> ())) [ 0; 1; 2 ];
  Net.set_slow net 1 ~factor:8.0;
  let t0 = Sim.now sim in
  Net.send net ~src:0 ~dst:1 "slowed";
  Sim.run_all sim;
  check (Alcotest.float 1e-9) "touching the slow peer multiplies latency" 8.0 (Sim.now sim -. t0);
  let t1 = Sim.now sim in
  Net.send net ~src:0 ~dst:2 "normal";
  Sim.run_all sim;
  check (Alcotest.float 1e-9) "other pairs unaffected" 1.0 (Sim.now sim -. t1);
  Net.clear_slow net 1;
  let t2 = Sim.now sim in
  Net.send net ~src:0 ~dst:1 "recovered";
  Sim.run_all sim;
  check (Alcotest.float 1e-9) "latency restored" 1.0 (Sim.now sim -. t2)

let test_net_partition () =
  let sim, net = mknet 4 in
  let inbox = ref [] in
  List.iter (fun i -> Net.register net i (fun ~src:_ msg -> inbox := msg :: !inbox)) [ 0; 1; 2; 3 ];
  (* 0,1 stay in the default group; 2,3 split away. *)
  Net.set_partition net 2 ~group:1;
  Net.set_partition net 3 ~group:1;
  Net.send net ~src:0 ~dst:2 "cross";
  Net.send net ~src:0 ~dst:1 "same-default";
  Net.send net ~src:2 ~dst:3 "same-split";
  Sim.run_all sim;
  check
    Alcotest.(slist string compare)
    "only intra-group traffic flows" [ "same-default"; "same-split" ] !inbox;
  Net.clear_partitions net;
  Net.send net ~src:0 ~dst:2 "healed";
  Sim.run_all sim;
  Alcotest.(check bool) "healed partition delivers" true (List.mem "healed" !inbox)

let test_net_in_flight_to_killed () =
  (* A message already in flight when the destination dies is lost. *)
  let sim, net = mknet 2 in
  let got = ref false in
  Net.register net 0 (fun ~src:_ _ -> ());
  Net.register net 1 (fun ~src:_ _ -> got := true);
  Net.send net ~src:0 ~dst:1 "x";
  Net.kill net 1;
  Sim.run_all sim;
  Alcotest.(check bool) "lost in flight" false !got

let test_net_bytes_split_under_loss () =
  (* Sent bytes count everything handed to the network; delivered bytes
     only what reached a live handler — so bandwidth numbers computed
     from [bytes_delivered] stay trustworthy under loss. *)
  let sim = Sim.create () in
  let rng = Rng.create 7 in
  let latency = Latency.create (Latency.Constant 1.0) ~n:2 ~rng in
  let net = Net.create sim ~latency ~rng ~drop:0.5 ~size:String.length () in
  Net.register net 0 (fun ~src:_ _ -> ());
  Net.register net 1 (fun ~src:_ _ -> ());
  let payload = String.make 10 'x' in
  for _ = 1 to 100 do
    Net.send net ~src:0 ~dst:1 payload
  done;
  Sim.run_all sim;
  let s = Net.stats net in
  check Alcotest.int "all bytes counted as sent" 1000 s.Net.bytes_sent;
  check Alcotest.int "delivered bytes track delivered messages" (10 * s.Net.delivered)
    s.Net.bytes_delivered;
  Alcotest.(check bool) "some loss occurred" true (s.Net.dropped > 0);
  Alcotest.(check bool) "delivered strictly less than sent" true
    (s.Net.bytes_delivered < s.Net.bytes_sent)

let test_net_peer_lists_invalidated () =
  (* [peers]/[alive_peers] are cached; every mutation must invalidate. *)
  let _, net = mknet 4 in
  List.iter (fun i -> Net.register net i (fun ~src:_ _ -> ())) [ 2; 0; 3 ];
  check Alcotest.(list int) "sorted" [ 0; 2; 3 ] (Net.peers net);
  check Alcotest.(list int) "all alive" [ 0; 2; 3 ] (Net.alive_peers net);
  Net.register net 1 (fun ~src:_ _ -> ());
  check Alcotest.(list int) "register invalidates" [ 0; 1; 2; 3 ] (Net.peers net);
  Net.kill net 2;
  check Alcotest.(list int) "kill invalidates alive" [ 0; 1; 3 ] (Net.alive_peers net);
  check Alcotest.(list int) "kill keeps membership" [ 0; 1; 2; 3 ] (Net.peers net);
  Net.revive net 2;
  check Alcotest.(list int) "revive invalidates" [ 0; 1; 2; 3 ] (Net.alive_peers net);
  (* Idempotent mutations keep the caches consistent. *)
  Net.kill net 0;
  Net.kill net 0;
  check Alcotest.(list int) "double kill" [ 1; 2; 3 ] (Net.alive_peers net);
  Net.register net 0 (fun ~src:_ _ -> ());
  check Alcotest.(list int) "re-register revives" [ 0; 1; 2; 3 ] (Net.alive_peers net)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_records_messages () =
  let sim, net = mknet 3 in
  List.iter (fun i -> Net.register net i (fun ~src:_ _ -> ())) [ 0; 1; 2 ];
  let tr = Trace.create () in
  Net.set_trace net (Some tr);
  Net.send net ~src:0 ~dst:1 "hello";
  Net.send net ~src:1 ~dst:2 "world";
  Sim.run_all sim;
  check Alcotest.int "two events" 2 (Trace.length tr);
  let delivered, dropped, to_dead, in_flight = Trace.outcome_counts tr in
  check Alcotest.int "delivered" 2 delivered;
  check Alcotest.int "dropped" 0 dropped;
  check Alcotest.int "to_dead" 0 to_dead;
  check Alcotest.int "in flight" 0 in_flight;
  (* Stop tracing: further messages unrecorded. *)
  Net.set_trace net None;
  Net.send net ~src:0 ~dst:2 "untraced";
  Sim.run_all sim;
  check Alcotest.int "still two" 2 (Trace.length tr)

let test_trace_outcomes () =
  let sim, net = mknet ~drop:1.0 2 in
  Net.register net 0 (fun ~src:_ _ -> ());
  Net.register net 1 (fun ~src:_ _ -> ());
  let tr = Trace.create () in
  Net.set_trace net (Some tr);
  Net.send net ~src:0 ~dst:1 "x";
  Sim.run_all sim;
  let _, dropped, _, _ = Trace.outcome_counts tr in
  check Alcotest.int "dropped traced" 1 dropped;
  (* Dead destination. *)
  let sim2, net2 = mknet 2 in
  Net.register net2 0 (fun ~src:_ _ -> ());
  Net.register net2 1 (fun ~src:_ _ -> ());
  Net.kill net2 1;
  let tr2 = Trace.create () in
  Net.set_trace net2 (Some tr2);
  Net.send net2 ~src:0 ~dst:1 "x";
  Sim.run_all sim2;
  let _, _, to_dead, _ = Trace.outcome_counts tr2 in
  check Alcotest.int "to-dead traced" 1 to_dead

let test_trace_analysis () =
  let tr = Trace.create () in
  ignore (Trace.record tr ~time:10.0 ~src:0 ~dst:1 ~kind:"lookup" ~bytes:10 ());
  ignore (Trace.record tr ~time:220.0 ~src:1 ~dst:2 ~kind:"lookup" ~bytes:20 ());
  (Trace.record tr ~time:230.0 ~src:2 ~dst:0 ~kind:"found" ~bytes:30 ()).Trace.outcome <-
    Trace.Delivered;
  (match Trace.by_kind tr with
  | (k1, c1, b1) :: _ ->
    check Alcotest.string "top kind" "lookup" k1;
    check Alcotest.int "count" 2 c1;
    check Alcotest.int "bytes" 30 b1
  | [] -> Alcotest.fail "no kinds");
  check Alcotest.int "two buckets at 100ms" 2
    (List.length (List.filter (fun (_, c) -> c > 0) (Trace.timeline tr ~bucket_ms:100.0)));
  let busiest = Trace.busiest_peers tr ~top:3 in
  check Alcotest.int "three peers" 3 (List.length busiest);
  (* peer 2: sent 1, received 0 (only 'found' delivered, to peer 0). *)
  (match List.assoc_opt 0 (List.map (fun (p, s, r) -> (p, (s, r))) busiest) with
  | Some (s, r) ->
    check Alcotest.int "peer0 sent" 1 s;
    check Alcotest.int "peer0 received" 1 r
  | None -> Alcotest.fail "peer0 missing");
  let s = Format.asprintf "%a" Trace.pp_summary tr in
  Alcotest.(check bool) "summary renders" true (String.length s > 40)

let () =
  Alcotest.run "unistore_sim"
    [
      ( "pqueue",
        [
          Alcotest.test_case "ordering" `Quick test_pqueue_order;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "size/clear" `Quick test_pqueue_size;
          prop_pqueue_sorted;
        ] );
      ( "sim",
        [
          Alcotest.test_case "time ordering" `Quick test_sim_time_ordering;
          Alcotest.test_case "nested scheduling" `Quick test_sim_nested_scheduling;
          Alcotest.test_case "run_until" `Quick test_sim_run_until;
          Alcotest.test_case "run_until drains" `Quick test_sim_run_until_drains;
          Alcotest.test_case "run_for" `Quick test_sim_run_for;
          Alcotest.test_case "negative delay" `Quick test_sim_negative_delay;
        ] );
      ( "latency",
        [
          Alcotest.test_case "constant" `Quick test_latency_constant;
          Alcotest.test_case "uniform bounds" `Quick test_latency_uniform_bounds;
          Alcotest.test_case "planetlab sane" `Quick test_latency_planetlab_positive;
          Alcotest.test_case "planetlab base deterministic" `Quick
            test_latency_planetlab_base_deterministic;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records messages" `Quick test_trace_records_messages;
          Alcotest.test_case "outcomes" `Quick test_trace_outcomes;
          Alcotest.test_case "analysis" `Quick test_trace_analysis;
        ] );
      ( "net",
        [
          Alcotest.test_case "delivery" `Quick test_net_delivery;
          Alcotest.test_case "dead peer" `Quick test_net_dead_peer;
          Alcotest.test_case "drop" `Quick test_net_drop;
          Alcotest.test_case "counters" `Quick test_net_counters;
          Alcotest.test_case "in-flight to killed" `Quick test_net_in_flight_to_killed;
          Alcotest.test_case "loss-burst hook" `Quick test_net_set_drop;
          Alcotest.test_case "slow-peer hook" `Quick test_net_set_slow;
          Alcotest.test_case "partition hook" `Quick test_net_partition;
          Alcotest.test_case "sent/delivered bytes under loss" `Quick
            test_net_bytes_split_under_loss;
          Alcotest.test_case "peer-list caches invalidated" `Quick
            test_net_peer_lists_invalidated;
        ] );
    ]
