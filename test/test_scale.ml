(* Scale-kernel regression tests: the invariants the flat-array
   simulator rebuild must preserve. Four concerns:

   - scheduler ordering and FIFO stability (the determinism bedrock),
   - peer-arena id reuse across kill/revive churn vs a reference model,
   - packed Bitkey encode/decode agrees with the old string encoding,
   - same seed => byte-identical trace at 10k peers under churn.

   See DESIGN.md, "Simulator kernel internals", for why each invariant
   matters. *)

open Unistore_util
module Pqueue = Unistore_sim.Pqueue
module Sim = Unistore_sim.Sim
module Latency = Unistore_sim.Latency
module Net = Unistore_sim.Net
module Trace = Unistore_sim.Trace
module Faults = Unistore_sim.Faults
module Config = Unistore_pgrid.Config
module Build = Unistore_pgrid.Build
module Overlay = Unistore_pgrid.Overlay

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Scheduler: total order = (priority, insertion sequence). The heap is
   4-ary on parallel arrays; none of that may leak into the order. *)

let prop_pqueue_stable_sort =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"pqueue: drain = stable sort by priority"
       (* Few distinct priorities so ties are common — stability is the
          interesting half of the property. *)
       QCheck2.Gen.(list_size (0 -- 200) (int_bound 7))
       (fun prios ->
         let q = Pqueue.create () in
         let tagged = List.mapi (fun i p -> (float_of_int p, i)) prios in
         List.iter (fun (p, i) -> Pqueue.push q ~priority:p i) tagged;
         let rec drain acc =
           match Pqueue.pop q with
           | Some (p, i) -> drain ((p, i) :: acc)
           | None -> List.rev acc
         in
         drain [] = List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) tagged))

let prop_pqueue_interleaved =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"pqueue: interleaved push/pop stays a min-heap"
       (* true = push the given priority, false = pop. *)
       QCheck2.Gen.(list_size (0 -- 150) (pair bool (float_bound_inclusive 100.0)))
       (fun ops ->
         let q = Pqueue.create () in
         let model = ref [] in
         List.for_all
           (fun (push, p) ->
             if push then begin
               Pqueue.push q ~priority:p p;
               model := p :: !model;
               true
             end
             else
               match (Pqueue.pop q, List.sort Float.compare !model) with
               | None, [] -> true
               | Some (got, _), least :: rest ->
                 model := rest;
                 got = least
               | None, _ :: _ | Some _, [] -> false)
           ops))

(* ------------------------------------------------------------------ *)
(* Peer arena: swap-remove alive set vs a naive reference model, under a
   random register/kill/revive/re-register storm. Catches stale
   alive_pos entries and id-slot reuse bugs. *)

let prop_arena_vs_model =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:150 ~name:"net arena: kill/revive churn matches model"
       (* (op, id): 0 register, 1 kill, 2 revive; ids collide on purpose. *)
       QCheck2.Gen.(list_size (0 -- 300) (pair (int_bound 2) (int_bound 40)))
       (fun ops ->
         let sim = Sim.create () in
         let rng = Rng.create 5 in
         let latency = Latency.create (Latency.Constant 1.0) ~n:64 ~rng in
         let net = Net.create sim ~latency ~rng () in
         let registered = Hashtbl.create 64 in
         let alive = Hashtbl.create 64 in
         List.iter
           (fun (op, id) ->
             match op with
             | 0 ->
               Net.register net id (fun ~src:_ _ -> ());
               Hashtbl.replace registered id ();
               Hashtbl.replace alive id ()
             | 1 ->
               Net.kill net id;
               if Hashtbl.mem registered id then Hashtbl.remove alive id
             | _ ->
               Net.revive net id;
               if Hashtbl.mem registered id then Hashtbl.replace alive id ())
           ops;
         let sorted h = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) h []) in
         Net.alive_peers net = sorted alive
         && Net.peers net = sorted registered
         && Net.alive_count net = Hashtbl.length alive
         && Net.registered_count net = Hashtbl.length registered
         && List.for_all (fun id -> Net.is_alive net id = Hashtbl.mem alive id)
              (List.init 42 Fun.id)))

let test_arena_random_alive_only_alive () =
  let sim = Sim.create () in
  let rng = Rng.create 11 in
  let latency = Latency.create (Latency.Constant 1.0) ~n:32 ~rng in
  let net = Net.create sim ~latency ~rng () in
  for i = 0 to 31 do
    Net.register net i (fun ~src:_ _ -> ())
  done;
  (* Kill every even peer; sampling must only ever return odd ids. *)
  for i = 0 to 31 do
    if i mod 2 = 0 then Net.kill net i
  done;
  let srng = Rng.create 42 in
  for _ = 1 to 500 do
    match Net.random_alive net srng with
    | Some id when id mod 2 = 1 && id < 32 -> ()
    | Some id -> Alcotest.failf "random_alive returned dead/unknown peer %d" id
    | None -> Alcotest.fail "random_alive returned None on a live network"
  done;
  (* Drain the alive set completely: sampling must return None, and a
     revive must bring it straight back. *)
  for i = 0 to 31 do
    Net.kill net i
  done;
  (match Net.random_alive net srng with
  | None -> ()
  | Some id -> Alcotest.failf "random_alive on empty alive set returned %d" id);
  Net.revive net 7;
  check Alcotest.(option int) "only survivor sampled" (Some 7) (Net.random_alive net srng)

let test_arena_iter_alive_sorted () =
  let sim = Sim.create () in
  let rng = Rng.create 13 in
  let latency = Latency.create (Latency.Constant 1.0) ~n:64 ~rng in
  let net = Net.create sim ~latency ~rng () in
  (* Register out of order, churn a little: iteration order must stay
     ascending by id regardless of internal swap-remove shuffling. *)
  List.iter (fun i -> Net.register net i (fun ~src:_ _ -> ())) [ 9; 2; 31; 0; 17; 4 ];
  Net.kill net 17;
  Net.kill net 2;
  Net.revive net 2;
  let seen = ref [] in
  Net.iter_alive net (fun id -> seen := id :: !seen);
  check Alcotest.(list int) "ascending id order" [ 0; 2; 4; 9; 31 ] (List.rev !seen)

(* ------------------------------------------------------------------ *)
(* Bitkey: the packed (int-word) representation must be observationally
   identical to the old char-per-bit strings. Generate lengths past 64
   so both the small (two-word) and wide (Bytes) variants are hit. *)

let gen_bits = QCheck2.Gen.(map (String.concat "") (list_size (0 -- 150) (oneofl [ "0"; "1" ])))

let prop_bitkey_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"bitkey: of_string/to_string round-trip" gen_bits
       (fun s -> Bitkey.to_string (Bitkey.of_string s) = s))

let prop_bitkey_compare_matches_strings =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"bitkey: compare = string compare on literals"
       QCheck2.Gen.(pair gen_bits gen_bits)
       (fun (a, b) ->
         (* On '0'/'1' literals, lexicographic string order (prefix-first)
            is exactly the old representation's order. *)
         let sign x = Stdlib.compare x 0 in
         sign (Bitkey.compare (Bitkey.of_string a) (Bitkey.of_string b))
         = sign (String.compare a b)))

let prop_bitkey_ops_match_strings =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"bitkey: take/drop/concat/get match string ops"
       QCheck2.Gen.(pair gen_bits gen_bits)
       (fun (a, b) ->
         let ka = Bitkey.of_string a and kb = Bitkey.of_string b in
         let n = String.length a / 2 in
         Bitkey.to_string (Bitkey.take ka n) = String.sub a 0 n
         && Bitkey.to_string (Bitkey.drop ka n) = String.sub a n (String.length a - n)
         && Bitkey.to_string (Bitkey.concat ka kb) = a ^ b
         && Bitkey.length ka = String.length a
         && (a = "" || Bitkey.get ka (String.length a - 1) = (a.[String.length a - 1] = '1'))))

(* ------------------------------------------------------------------ *)
(* Determinism at 10k peers: two runs from the same seed — overlay
   build, insert+lookup workload, crash/revive churn — must produce a
   byte-identical message trace and fault log. This is the contract the
   fault-replay tooling (EXPERIMENTS.md "Churn") rests on; the arena
   rebuild must not let iteration order leak heap layout. *)

let render_trace tr =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%.6f %d>%d %s %dB c%d %s\n" e.Trace.time e.Trace.src e.Trace.dst
           e.Trace.kind e.Trace.bytes e.Trace.corr
           (Format.asprintf "%a" Trace.pp_outcome e.Trace.outcome)))
    (Trace.events tr);
  Buffer.contents buf

let run_10k_once () =
  let n = 10_000 in
  let sim = Sim.create () in
  let rng = Rng.create 4242 in
  let latency = Latency.create Latency.Lan ~n ~rng in
  let ov = Build.oracle sim ~latency ~rng ~config:Config.default ~n ~sample_keys:[] ~balanced:true () in
  let tr = Trace.create () in
  Net.set_trace (Overlay.net ov) (Some tr);
  let spec =
    Faults.spec ~seed:99 ~duration_ms:5_000.0
      ~churn:(Faults.churn_spec ~interval_ms:1_000.0 ~down_ms:2_000.0 ~rate:0.01 ())
      ()
  in
  let h = Faults.inject (Overlay.net ov) spec in
  let wrng = Rng.create 777 in
  for i = 0 to 199 do
    let key = String.init 8 (fun _ -> Char.chr (Rng.int wrng 256)) in
    let origin = Rng.int wrng n in
    Overlay.insert ov ~origin ~key ~item_id:(string_of_int i) ~payload:"p" ~k:(fun _ -> ()) ();
    let lorigin = Rng.int wrng n in
    Overlay.lookup ov ~origin:lorigin ~key ~k:(fun _ -> ())
  done;
  Sim.run_all sim;
  (render_trace tr, Faults.render_log h, Sim.processed sim)

let test_determinism_10k () =
  let trace1, faults1, events1 = run_10k_once () in
  let trace2, faults2, events2 = run_10k_once () in
  Alcotest.(check bool) "trace non-trivial" true (String.length trace1 > 1000);
  Alcotest.(check bool) "faults fired" true (String.length faults1 > 0);
  check Alcotest.int "same event count" events1 events2;
  check Alcotest.string "byte-identical fault log" faults1 faults2;
  (* The trace can be megabytes; compare lengths first for a readable
     failure, then the bytes. *)
  check Alcotest.int "same trace length" (String.length trace1) (String.length trace2);
  Alcotest.(check bool) "byte-identical trace" true (String.equal trace1 trace2)

let () =
  Alcotest.run "unistore_scale"
    [
      ("scheduler", [ prop_pqueue_stable_sort; prop_pqueue_interleaved ]);
      ( "arena",
        [
          prop_arena_vs_model;
          Alcotest.test_case "random_alive samples only alive" `Quick
            test_arena_random_alive_only_alive;
          Alcotest.test_case "iter_alive ascending" `Quick test_arena_iter_alive_sorted;
        ] );
      ( "bitkey",
        [ prop_bitkey_roundtrip; prop_bitkey_compare_matches_strings; prop_bitkey_ops_match_strings ]
      );
      ("determinism", [ Alcotest.test_case "10k peers, same seed, same trace" `Quick test_determinism_10k ]);
    ]
