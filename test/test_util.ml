(* Unit and property tests for the shared kernel (unistore_util). *)

open Unistore_util

let check = Alcotest.check
let qtest ?(count = 500) name gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" false (Int64.equal (Rng.bits64 a) (Rng.bits64 b))

let test_rng_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.failf "Rng.int out of bounds: %d" v
  done

let test_rng_int_rejects () =
  let r = Rng.create 7 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound <= 0") (fun () ->
      ignore (Rng.int r 0))

let test_rng_int_in () =
  let r = Rng.create 9 in
  for _ = 1 to 500 do
    let v = Rng.int_in r (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "int_in out of bounds: %d" v
  done

let test_rng_float_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create 5 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_sample_distinct () =
  let r = Rng.create 11 in
  let l = List.init 100 (fun i -> i) in
  let s = Rng.sample r 10 l in
  check Alcotest.int "size" 10 (List.length s);
  check Alcotest.int "distinct" 10 (List.length (List.sort_uniq compare s))

let test_rng_sample_small () =
  let r = Rng.create 11 in
  check Alcotest.int "all taken" 3 (List.length (Rng.sample r 10 [ 1; 2; 3 ]));
  check Alcotest.(list int) "empty" [] (Rng.sample r 5 [])

let test_rng_split_independent () =
  let a = Rng.create 42 in
  let b = Rng.split a in
  (* The split stream must differ from the parent's continuation. *)
  Alcotest.(check bool) "independent" false (Int64.equal (Rng.bits64 a) (Rng.bits64 b))

let test_rng_bool_bias () =
  let r = Rng.create 13 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bool r ~p:0.25 then incr hits
  done;
  let frac = float_of_int !hits /. 10_000.0 in
  if frac < 0.22 || frac > 0.28 then Alcotest.failf "bool(~p:0.25) frequency off: %f" frac

let test_rng_gaussian_moments () =
  let r = Rng.create 17 in
  let xs = List.init 20_000 (fun _ -> Rng.gaussian r) in
  let m = Stats.mean xs and sd = Stats.stddev xs in
  if Float.abs m > 0.05 then Alcotest.failf "gaussian mean off: %f" m;
  if Float.abs (sd -. 1.0) > 0.05 then Alcotest.failf "gaussian sd off: %f" sd

(* ------------------------------------------------------------------ *)
(* Bitkey *)

let bits_gen = QCheck2.Gen.(string_size ~gen:(oneofl [ '0'; '1' ]) (0 -- 80))

let test_bitkey_roundtrip () =
  let s = "011010011" in
  check Alcotest.string "roundtrip" s (Bitkey.to_string (Bitkey.of_string s))

let test_bitkey_empty () =
  check Alcotest.int "empty length" 0 (Bitkey.length Bitkey.empty);
  check Alcotest.string "empty string" "" (Bitkey.to_string Bitkey.empty)

let test_bitkey_get () =
  let k = Bitkey.of_string "101" in
  Alcotest.(check bool) "bit0" true (Bitkey.get k 0);
  Alcotest.(check bool) "bit1" false (Bitkey.get k 1);
  Alcotest.(check bool) "bit2" true (Bitkey.get k 2);
  Alcotest.check_raises "oob" (Invalid_argument "Bitkey.get: index out of bounds") (fun () ->
      ignore (Bitkey.get k 3))

let test_bitkey_append () =
  let k = Bitkey.of_string "10" in
  check Alcotest.string "append1" "101" (Bitkey.to_string (Bitkey.append_bit k true));
  check Alcotest.string "append0" "100" (Bitkey.to_string (Bitkey.append_bit k false))

let test_bitkey_take_drop () =
  let k = Bitkey.of_string "1011001" in
  check Alcotest.string "take" "1011" (Bitkey.to_string (Bitkey.take k 4));
  check Alcotest.string "drop" "001" (Bitkey.to_string (Bitkey.drop k 4));
  check Alcotest.string "take0" "" (Bitkey.to_string (Bitkey.take k 0));
  check Alcotest.string "drop all" "" (Bitkey.to_string (Bitkey.drop k 7))

let test_bitkey_flip () =
  let k = Bitkey.of_string "000" in
  check Alcotest.string "flip middle" "010" (Bitkey.to_string (Bitkey.flip k 1))

let test_bitkey_prefix () =
  let p = Bitkey.of_string "10" and k = Bitkey.of_string "1011" in
  Alcotest.(check bool) "is_prefix" true (Bitkey.is_prefix ~prefix:p k);
  Alcotest.(check bool) "not prefix" false (Bitkey.is_prefix ~prefix:k p);
  Alcotest.(check bool) "self prefix" true (Bitkey.is_prefix ~prefix:k k)

let test_bitkey_common_prefix () =
  check Alcotest.int "cpl" 2
    (Bitkey.common_prefix_len (Bitkey.of_string "1011") (Bitkey.of_string "1000"));
  check Alcotest.int "cpl disjoint" 0
    (Bitkey.common_prefix_len (Bitkey.of_string "1") (Bitkey.of_string "0"))

let test_bitkey_int64_roundtrip () =
  let k = Bitkey.of_string "1100000000000000000000000000000000000000000000000000000000000001" in
  let x = Bitkey.to_int64 k in
  check Alcotest.string "roundtrip via int64" (Bitkey.to_string k)
    (Bitkey.to_string (Bitkey.of_int64 ~width:64 x))

let test_bitkey_successor () =
  let s k = Option.map Bitkey.to_string (Bitkey.successor (Bitkey.of_string k)) in
  check Alcotest.(option string) "succ 011" (Some "100") (s "011");
  check Alcotest.(option string) "succ 000" (Some "001") (s "000");
  check Alcotest.(option string) "succ 111" None (s "111")

let test_bitkey_pad () =
  let k = Bitkey.of_string "10" in
  check Alcotest.string "pad0" "10000" (Bitkey.to_string (Bitkey.pad k ~width:5 false));
  check Alcotest.string "pad1" "10111" (Bitkey.to_string (Bitkey.pad k ~width:5 true));
  check Alcotest.string "pad noop" "10" (Bitkey.to_string (Bitkey.pad k ~width:1 true))

let test_bitkey_enumerate () =
  let l = Bitkey.enumerate 3 in
  check Alcotest.int "count" 8 (List.length l);
  check Alcotest.string "first" "000" (Bitkey.to_string (List.hd l));
  check Alcotest.string "last" "111" (Bitkey.to_string (List.nth l 7));
  (* sorted *)
  let sorted = List.sort Bitkey.compare l in
  check
    Alcotest.(list string)
    "lexicographic" (List.map Bitkey.to_string l) (List.map Bitkey.to_string sorted)

let prop_bitkey_string_roundtrip =
  qtest "bitkey: of_string/to_string roundtrip" bits_gen (fun s ->
      String.equal s (Bitkey.to_string (Bitkey.of_string s)))

let prop_bitkey_compare_matches_string =
  qtest "bitkey: compare = string compare" QCheck2.Gen.(pair bits_gen bits_gen) (fun (a, b) ->
      let c1 = Bitkey.compare (Bitkey.of_string a) (Bitkey.of_string b) in
      let c2 = String.compare a b in
      compare c1 0 = compare c2 0)

let prop_bitkey_concat =
  qtest "bitkey: concat = string concat" QCheck2.Gen.(pair bits_gen bits_gen) (fun (a, b) ->
      String.equal (a ^ b) (Bitkey.to_string (Bitkey.concat (Bitkey.of_string a) (Bitkey.of_string b))))

let prop_bitkey_take_drop =
  qtest "bitkey: take ^ drop = id" QCheck2.Gen.(pair bits_gen (0 -- 80)) (fun (s, n) ->
      QCheck2.assume (n <= String.length s);
      let k = Bitkey.of_string s in
      String.equal s Bitkey.(to_string (concat (take k n) (drop k n))))

let prop_bitkey_bytes_order =
  qtest "bitkey: of_bytes_prefix preserves order"
    QCheck2.Gen.(pair (string_size (0 -- 12)) (string_size (0 -- 12)))
    (fun (a, b) ->
      let ka = Bitkey.of_bytes_prefix a ~width:64 and kb = Bitkey.of_bytes_prefix b ~width:64 in
      if String.compare a b <= 0 then Bitkey.compare ka kb <= 0 else Bitkey.compare ka kb >= 0)

let prop_bitkey_equal_hash =
  qtest "bitkey: equal implies same hash" bits_gen (fun s ->
      let a = Bitkey.of_string s and b = Bitkey.of_string s in
      Bitkey.equal a b && Bitkey.hash a = Bitkey.hash b)

(* ------------------------------------------------------------------ *)
(* Ophash *)

let test_ophash_int_order () =
  let pairs = [ (-10, 3); (0, 1); (min_int, max_int); (42, 42); (-1, 0) ] in
  List.iter
    (fun (a, b) ->
      let ea = Ophash.encode_int a and eb = Ophash.encode_int b in
      if compare a b <> compare 0 0 && compare (String.compare ea eb) 0 <> compare (compare a b) 0
      then Alcotest.failf "int order broken for %d %d" a b)
    pairs

let test_ophash_int_roundtrip () =
  List.iter
    (fun i -> check Alcotest.int "int roundtrip" i (Ophash.decode_int (Ophash.encode_int i)))
    [ 0; 1; -1; 42; min_int; max_int; 123456789 ]

let prop_ophash_int_order =
  qtest "ophash: int encoding order-preserving" QCheck2.Gen.(pair int int) (fun (a, b) ->
      let c1 = String.compare (Ophash.encode_int a) (Ophash.encode_int b) in
      compare c1 0 = compare (compare a b) 0)

let prop_ophash_float_order =
  let fgen = QCheck2.Gen.(map (fun f -> if Float.is_nan f then 0.0 else f) float) in
  qtest "ophash: float encoding order-preserving" QCheck2.Gen.(pair fgen fgen) (fun (a, b) ->
      let c1 = String.compare (Ophash.encode_float a) (Ophash.encode_float b) in
      compare c1 0 = compare (Float.compare a b) 0)

let prop_ophash_float_roundtrip =
  let fgen = QCheck2.Gen.(map (fun f -> if Float.is_nan f then 0.0 else f) float) in
  qtest "ophash: float decode roundtrip" fgen (fun f ->
      Float.equal (Ophash.decode_float (Ophash.encode_float f)) f)

let test_ophash_range_region () =
  let lo, hi = Ophash.range_region ~lo:"apple" ~hi:"banana" in
  Alcotest.(check bool) "lo <= hi" true (Bitkey.compare lo hi <= 0);
  let key = Ophash.bitkey_of_string "avocado" in
  Alcotest.(check bool) "avocado inside" true (Bitkey.compare lo key <= 0 && Bitkey.compare key hi <= 0)

let test_ophash_prefix_region () =
  let lo, hi = Ophash.prefix_region "app" in
  let inside = Ophash.bitkey_of_string "apple" in
  let outside = Ophash.bitkey_of_string "banana" in
  Alcotest.(check bool) "apple in app*" true
    (Bitkey.compare lo inside <= 0 && Bitkey.compare inside hi <= 0);
  Alcotest.(check bool) "banana not in app*" false
    (Bitkey.compare lo outside <= 0 && Bitkey.compare outside hi <= 0)

(* ------------------------------------------------------------------ *)
(* Strdist *)

let test_levenshtein_known () =
  let cases =
    [
      ("", "", 0);
      ("a", "", 1);
      ("", "abc", 3);
      ("kitten", "sitting", 3);
      ("flaw", "lawn", 2);
      ("ICDE", "ICDE", 0);
      ("ICDE", "ICDM", 1);
      ("VLDB", "ICDE", 3);
    ]
  in
  List.iter
    (fun (a, b, d) ->
      check Alcotest.int (Printf.sprintf "d(%s,%s)" a b) d (Strdist.levenshtein a b))
    cases

let str_gen = QCheck2.Gen.(string_size ~gen:(char_range 'a' 'e') (0 -- 12))

let prop_levenshtein_symmetric =
  qtest "levenshtein: symmetric" QCheck2.Gen.(pair str_gen str_gen) (fun (a, b) ->
      Strdist.levenshtein a b = Strdist.levenshtein b a)

let prop_levenshtein_identity =
  qtest "levenshtein: d(a,a)=0" str_gen (fun a -> Strdist.levenshtein a a = 0)

let prop_levenshtein_triangle =
  qtest "levenshtein: triangle inequality" QCheck2.Gen.(triple str_gen str_gen str_gen)
    (fun (a, b, c) ->
      Strdist.levenshtein a c <= Strdist.levenshtein a b + Strdist.levenshtein b c)

let prop_within_distance_agrees =
  qtest "within_distance agrees with levenshtein"
    QCheck2.Gen.(triple str_gen str_gen (0 -- 5))
    (fun (a, b, d) -> Strdist.within_distance a b d = (Strdist.levenshtein a b <= d))

let test_qgrams () =
  check
    Alcotest.(list string)
    "qgrams of 'abc' q=2"
    [ "#a"; "ab"; "bc"; "c$" ]
    (Strdist.qgrams ~q:2 "abc");
  check Alcotest.(list string) "qgrams empty" [ "#$" ] (Strdist.qgrams ~q:2 "")

let prop_substring_grams_indexed =
  (* Every unpadded q-gram of a pattern occurs among the padded q-grams of
     any string containing the pattern — the completeness argument of the
     substring search. *)
  qtest "substring q-grams appear in containing strings' gram sets"
    QCheck2.Gen.(triple str_gen str_gen str_gen)
    (fun (pre, pat, post) ->
      QCheck2.assume (String.length pat >= 3);
      let value = pre ^ pat ^ post in
      let value_grams = Strdist.distinct_qgrams ~q:3 value in
      List.for_all (fun g -> List.mem g value_grams) (Strdist.substring_qgrams ~q:3 pat))

let test_substring_qgrams () =
  check Alcotest.(list string) "abcd q=3" [ "abc"; "bcd" ] (Strdist.substring_qgrams ~q:3 "abcd");
  check Alcotest.(list string) "short" [] (Strdist.substring_qgrams ~q:3 "ab");
  check Alcotest.(list string) "dedup" [ "aaa" ] (Strdist.substring_qgrams ~q:3 "aaaaa")

let prop_count_filter_sound =
  (* If edist(a,b) <= d then the q-gram count filter must not prune. *)
  qtest "qgram count filter is sound"
    QCheck2.Gen.(triple str_gen str_gen (0 -- 3))
    (fun (a, b, d) ->
      QCheck2.assume (Strdist.levenshtein a b <= d);
      Strdist.passes_count_filter ~q:3 a b d)

let prop_prefix_grams_sound =
  (* The rarest-first count-filter prefix: whenever the similarity index
     applies at all (the pattern has more than d*q gram occurrences, the
     same guard the triple store uses), any string within edit distance d
     of the pattern holds at least one selected gram — so fetching only
     the prefix grams' postings cannot lose a true match. *)
  qtest "prefix_grams never prunes a true match"
    QCheck2.Gen.(triple str_gen str_gen (0 -- 2))
    (fun (a, b, d) ->
      QCheck2.assume (String.length a + 3 - 1 - (d * 3) >= 1);
      QCheck2.assume (Strdist.levenshtein a b <= d);
      let selected = Strdist.prefix_grams ~q:3 ~d a in
      let b_grams = Strdist.distinct_qgrams ~q:3 b in
      List.exists (fun g -> List.mem g b_grams) selected)

let prop_prefix_grams_subset =
  (* Selection only drops grams, and is non-empty for non-empty input. *)
  qtest "prefix_grams is a non-empty subset of the distinct grams"
    QCheck2.Gen.(pair str_gen (0 -- 2))
    (fun (a, d) ->
      let all = Strdist.distinct_qgrams ~q:3 a in
      let sel = Strdist.prefix_grams ~q:3 ~d a in
      sel <> [] && List.for_all (fun g -> List.mem g all) sel)

let test_prefix_grams_rarest_first () =
  (* With an explicit frequency oracle, rare grams are selected first. *)
  let freq = function "#ab" -> 1 | "ab$" -> 2 | _ -> 1000 in
  match Strdist.prefix_grams ~freq ~q:3 ~d:0 "ab" with
  | "#ab" :: _ -> ()
  | gs -> Alcotest.failf "expected rarest gram first, got [%s]" (String.concat ";" gs)

(* ------------------------------------------------------------------ *)
(* Topk *)

let prop_topk_matches_stable_sort =
  (* The bounded heap returns exactly the first k elements of a stable
     full sort — ties tracked by tagging each element with its arrival
     index and comparing on the value alone. *)
  qtest "topk = stable sort truncated (ties by arrival)"
    QCheck2.Gen.(pair (0 -- 8) (list_size (0 -- 40) (0 -- 4)))
    (fun (k, vs) ->
      let xs = List.mapi (fun i v -> (v, i)) vs in
      let cmp (a, _) (b, _) = Int.compare a b in
      let expect = List.filteri (fun i _ -> i < k) (List.stable_sort cmp xs) in
      Topk.smallest ~cmp k xs = expect)

let test_topk_capacity_zero () =
  check Alcotest.(list int) "keeps nothing" [] (Topk.smallest ~cmp:Int.compare 0 [ 3; 1; 2 ]);
  check
    Alcotest.(list int)
    "negative capacity" [] (Topk.smallest ~cmp:Int.compare (-2) [ 3; 1 ])

let test_topk_capacity_exceeds_input () =
  check
    Alcotest.(list int)
    "whole input sorted" [ 1; 2; 3 ]
    (Topk.smallest ~cmp:Int.compare 10 [ 3; 1; 2 ])

let test_topk_incremental () =
  let t = Topk.create ~cmp:Int.compare 3 in
  check Alcotest.int "empty" 0 (Topk.length t);
  Topk.add_list t [ 9; 4; 7; 1; 8 ];
  check Alcotest.int "bounded" 3 (Topk.length t);
  check Alcotest.int "capacity" 3 (Topk.capacity t);
  check Alcotest.(list int) "three smallest" [ 1; 4; 7 ] (Topk.to_sorted_list t);
  Topk.add t 2;
  check Alcotest.(list int) "displaces the largest" [ 1; 2; 4 ] (Topk.to_sorted_list t)

(* ------------------------------------------------------------------ *)
(* Zipf *)

let test_zipf_probabilities_sum () =
  let z = Zipf.create ~n:100 ~s:1.1 in
  let total = List.fold_left (fun acc r -> acc +. Zipf.probability z r) 0.0 (List.init 100 (fun i -> i + 1)) in
  if Float.abs (total -. 1.0) > 1e-9 then Alcotest.failf "probabilities sum to %f" total

let test_zipf_rank1_most_probable () =
  let z = Zipf.create ~n:50 ~s:0.8 in
  Alcotest.(check bool) "p(1) > p(2)" true (Zipf.probability z 1 > Zipf.probability z 2);
  Alcotest.(check bool) "p(2) > p(50)" true (Zipf.probability z 2 > Zipf.probability z 50)

let test_zipf_uniform () =
  let z = Zipf.create ~n:10 ~s:0.0 in
  if Float.abs (Zipf.probability z 1 -. 0.1) > 1e-9 then Alcotest.fail "uniform when s=0"

let test_zipf_sample_bounds () =
  let z = Zipf.create ~n:20 ~s:1.2 in
  let r = Rng.create 19 in
  for _ = 1 to 2000 do
    let v = Zipf.sample z r in
    if v < 1 || v > 20 then Alcotest.failf "sample out of bounds: %d" v
  done

let test_zipf_skew_effect () =
  let z = Zipf.create ~n:100 ~s:1.5 in
  let r = Rng.create 23 in
  let ones = ref 0 in
  for _ = 1 to 5000 do
    if Zipf.sample z r = 1 then incr ones
  done;
  (* rank 1 carries ~0.37 of the mass at s=1.5, n=100 *)
  let frac = float_of_int !ones /. 5000.0 in
  if frac < 0.3 then Alcotest.failf "rank-1 frequency too low for skewed zipf: %f" frac

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check (Alcotest.float 1e-9) "mean" 3.0 s.Stats.mean;
  check (Alcotest.float 1e-9) "min" 1.0 s.Stats.min;
  check (Alcotest.float 1e-9) "max" 5.0 s.Stats.max;
  check (Alcotest.float 1e-9) "p50" 3.0 s.Stats.p50

let test_stats_percentile () =
  check (Alcotest.float 1e-9) "p0" 1.0 (Stats.percentile [ 3.0; 1.0; 2.0 ] 0.0);
  check (Alcotest.float 1e-9) "p100" 3.0 (Stats.percentile [ 3.0; 1.0; 2.0 ] 100.0);
  check (Alcotest.float 1e-9) "p50 interpolated" 2.5 (Stats.percentile [ 1.0; 2.0; 3.0; 4.0 ] 50.0)

let test_stats_online () =
  let o = Stats.Online.create () in
  List.iter (Stats.Online.add o) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check (Alcotest.float 1e-9) "online mean" 5.0 (Stats.Online.mean o);
  check Alcotest.int "online count" 8 (Stats.Online.count o)

let test_stats_linear_fit () =
  let pts = List.init 10 (fun i -> (float_of_int i, (2.0 *. float_of_int i) +. 1.0)) in
  let slope, intercept, r2 = Stats.linear_fit pts in
  check (Alcotest.float 1e-9) "slope" 2.0 slope;
  check (Alcotest.float 1e-9) "intercept" 1.0 intercept;
  check (Alcotest.float 1e-9) "r2" 1.0 r2

let () =
  Alcotest.run "unistore_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects bad bound" `Quick test_rng_int_rejects;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample distinct" `Quick test_rng_sample_distinct;
          Alcotest.test_case "sample small lists" `Quick test_rng_sample_small;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "bool bias" `Quick test_rng_bool_bias;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
        ] );
      ( "bitkey",
        [
          Alcotest.test_case "roundtrip" `Quick test_bitkey_roundtrip;
          Alcotest.test_case "empty" `Quick test_bitkey_empty;
          Alcotest.test_case "get" `Quick test_bitkey_get;
          Alcotest.test_case "append" `Quick test_bitkey_append;
          Alcotest.test_case "take/drop" `Quick test_bitkey_take_drop;
          Alcotest.test_case "flip" `Quick test_bitkey_flip;
          Alcotest.test_case "prefix" `Quick test_bitkey_prefix;
          Alcotest.test_case "common prefix" `Quick test_bitkey_common_prefix;
          Alcotest.test_case "int64 roundtrip" `Quick test_bitkey_int64_roundtrip;
          Alcotest.test_case "successor" `Quick test_bitkey_successor;
          Alcotest.test_case "pad" `Quick test_bitkey_pad;
          Alcotest.test_case "enumerate" `Quick test_bitkey_enumerate;
          prop_bitkey_string_roundtrip;
          prop_bitkey_compare_matches_string;
          prop_bitkey_concat;
          prop_bitkey_take_drop;
          prop_bitkey_bytes_order;
          prop_bitkey_equal_hash;
        ] );
      ( "ophash",
        [
          Alcotest.test_case "int order cases" `Quick test_ophash_int_order;
          Alcotest.test_case "int roundtrip" `Quick test_ophash_int_roundtrip;
          Alcotest.test_case "range region" `Quick test_ophash_range_region;
          Alcotest.test_case "prefix region" `Quick test_ophash_prefix_region;
          prop_ophash_int_order;
          prop_ophash_float_order;
          prop_ophash_float_roundtrip;
        ] );
      ( "strdist",
        [
          Alcotest.test_case "levenshtein known" `Quick test_levenshtein_known;
          Alcotest.test_case "qgrams" `Quick test_qgrams;
          prop_levenshtein_symmetric;
          prop_levenshtein_identity;
          prop_levenshtein_triangle;
          prop_within_distance_agrees;
          prop_count_filter_sound;
          prop_prefix_grams_sound;
          prop_prefix_grams_subset;
          Alcotest.test_case "prefix grams rarest first" `Quick test_prefix_grams_rarest_first;
          prop_substring_grams_indexed;
          Alcotest.test_case "substring qgrams" `Quick test_substring_qgrams;
        ] );
      ( "topk",
        [
          prop_topk_matches_stable_sort;
          Alcotest.test_case "capacity zero" `Quick test_topk_capacity_zero;
          Alcotest.test_case "capacity exceeds input" `Quick test_topk_capacity_exceeds_input;
          Alcotest.test_case "incremental" `Quick test_topk_incremental;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "probabilities sum" `Quick test_zipf_probabilities_sum;
          Alcotest.test_case "rank order" `Quick test_zipf_rank1_most_probable;
          Alcotest.test_case "uniform at s=0" `Quick test_zipf_uniform;
          Alcotest.test_case "sample bounds" `Quick test_zipf_sample_bounds;
          Alcotest.test_case "skew effect" `Quick test_zipf_skew_effect;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "online" `Quick test_stats_online;
          Alcotest.test_case "linear fit" `Quick test_stats_linear_fit;
        ] );
    ]
