(* Tests for the static-analysis layer (unistore_analysis): seeded-defect
   fixtures for each analyzer — the semantic checker must flag unbound
   variables, type clashes, contradictory ranges, Cartesian products and
   bad LIMITs; the trace linter must flag hand-corrupted traces; the
   overlay auditor must flag hand-mutated overlays — and all three must
   stay silent on clean inputs (including the paper's demo query). *)

open Unistore_util
module Sim = Unistore_sim.Sim
module Latency = Unistore_sim.Latency
module Trace = Unistore_sim.Trace
module Store = Unistore_pgrid.Store
module Node = Unistore_pgrid.Node
module Config = Unistore_pgrid.Config
module Overlay = Unistore_pgrid.Overlay
module Build = Unistore_pgrid.Build
module Chord = Unistore_chord.Chord
module Value = Unistore_triple.Value
module Triple = Unistore_triple.Triple
module Metrics = Unistore_obs.Metrics
module D = Unistore_analysis.Diagnostic
module Catalog = Unistore_analysis.Catalog
module Semantic = Unistore_analysis.Semantic
module Tracelint = Unistore_analysis.Tracelint
module Audit = Unistore_analysis.Audit

let check = Alcotest.check

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let codes ds = List.map (fun (d : D.t) -> d.D.code) ds
let has code ds = List.exists (fun (d : D.t) -> String.equal d.D.code code) ds

let check_has what code ds =
  if not (has code ds) then
    Alcotest.failf "%s: expected a %S diagnostic, got [%s]" what code
      (String.concat "; " (codes ds))

let check_clean what ds =
  if ds <> [] then
    Alcotest.failf "%s: expected no diagnostics, got [%s]" what (String.concat "; " (codes ds))

(* ------------------------------------------------------------------ *)
(* Semantic analyzer *)

(* The schema of the paper's running example, as a catalog. *)
let catalog =
  Catalog.of_triples
    [
      Triple.make ~oid:"a1" ~attr:"name" (Value.S "alice");
      Triple.make ~oid:"a1" ~attr:"age" (Value.I 30);
      Triple.make ~oid:"a1" ~attr:"num_of_pubs" (Value.I 3);
      Triple.make ~oid:"a1" ~attr:"has_published" (Value.S "t1");
      Triple.make ~oid:"p1" ~attr:"title" (Value.S "t1");
      Triple.make ~oid:"p1" ~attr:"published_in" (Value.S "ICDE 2007");
      Triple.make ~oid:"c1" ~attr:"confname" (Value.S "ICDE 2007");
      Triple.make ~oid:"c1" ~attr:"series" (Value.S "ICDE");
    ]

let diags ?catalog src =
  match Semantic.analyze_string ?catalog src with
  | Ok (_, ds) -> ds
  | Error e -> Alcotest.failf "fixture failed to parse: %s" e

let test_sem_unbound () =
  let ds = diags "SELECT ?ghost WHERE { (?a,'name',?v) }" in
  check_has "unbound projection" "unbound-var" ds;
  let d = List.find (fun (d : D.t) -> d.D.code = "unbound-var") ds in
  Alcotest.(check bool) "positioned" true (d.D.span.Unistore_vql.Loc.start >= 0)

let test_sem_unused () =
  check_has "bound once, never used" "unused-var"
    (diags "SELECT ?v WHERE { (?a,'name',?v) (?a,'age',?w) }")

let test_sem_type_clash () =
  (* 'age' is numeric in the catalog; edist forces string. *)
  check_has "numeric attr under edist" "type-clash"
    (diags ~catalog "SELECT ?x WHERE { (?a,'age',?x) FILTER edist(?x,'ab') < 2 }")

let test_sem_unknown_attr () =
  check_has "attribute absent from catalog" "unknown-attr"
    (diags ~catalog "SELECT ?x WHERE { (?a,'zzz',?x) }")

let test_sem_unsat_range () =
  check_has "contradictory bounds" "unsat-filter"
    (diags "SELECT ?v WHERE { (?a,'age',?v) FILTER ?v > 10 AND ?v < 5 }")

let test_sem_unsat_edist () =
  check_has "impossible edit distance" "unsat-filter"
    (diags "SELECT ?v WHERE { (?a,'series',?v) FILTER edist(?v,'ICDE') < 0 }")

let test_sem_cartesian () =
  check_has "disconnected join graph" "cartesian-product"
    (diags "SELECT ?x,?y WHERE { (?a,'name',?x) (?b,'age',?y) }");
  Alcotest.(check bool) "connected graph accepted" false
    (has "cartesian-product" (diags "SELECT ?x,?y WHERE { (?a,'name',?x) (?a,'age',?y) }"))

let test_sem_bad_limit () =
  (* analyze_string skips the parser's own validation, so the bad top-N
     parameter reaches the analyzer. *)
  check_has "non-positive LIMIT" "bad-limit" (diags "SELECT ?v WHERE { (?a,'x',?v) } LIMIT 0")

(* The paper's demo query (section 2): skyline over age/productivity
   with a similarity filter. Must be completely clean. *)
let paper_query =
  "SELECT ?name,?age,?cnt\n\
   WHERE {(?a,'name',?name) (?a,'age',?age)\n\
   (?a,'num_of_pubs',?cnt)\n\
   (?a,'has_published',?title) (?p,'title',?title)\n\
   (?p,'published_in',?conf) (?c,'confname',?conf)\n\
   (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3\n\
   }\n\
   ORDER BY SKYLINE OF ?age MIN, ?cnt MAX"

let test_sem_paper_query_clean () = check_clean "paper demo query" (diags ~catalog paper_query)

(* ------------------------------------------------------------------ *)
(* Engine gate: error-severity diagnostics refuse the plan *)

let mk_deployment () =
  let store = Unistore.create { Unistore.default_config with peers = 8 } in
  ignore
    (Unistore.insert_tuple store ~oid:"a1"
       [ ("name", Value.S "alice"); ("age", Value.I 30) ]);
  ignore
    (Unistore.insert_tuple store ~oid:"a2" [ ("name", Value.S "bob"); ("age", Value.I 40) ]);
  Unistore.set_stats_of_triples store
    [ Triple.make ~oid:"a1" ~attr:"name" (Value.S "alice");
      Triple.make ~oid:"a1" ~attr:"age" (Value.I 30) ];
  Unistore.settle store;
  store

let test_engine_refuses_unsat () =
  let store = mk_deployment () in
  (match Unistore.query store "SELECT ?v WHERE { (?a,'age',?v) FILTER ?v > 100 AND ?v < 50 }" with
  | Ok _ -> Alcotest.fail "engine executed an unsatisfiable query"
  | Error e ->
    Alcotest.(check bool) "mentions the diagnostic code" true (contains_sub e "unsat-filter"));
  match Unistore.query store "SELECT ?n WHERE { (?a,'name',?n) }" with
  | Ok report -> check Alcotest.int "clean query still runs" 2 (List.length report.Unistore.Report.rows)
  | Error e -> Alcotest.failf "clean query refused: %s" e

let test_facade_check () =
  let store = mk_deployment () in
  (match Unistore.check store "SELECT ?v WHERE { (?a,'age',?v) FILTER ?v > 100 AND ?v < 50 }" with
  | Ok ds -> check_has "facade check" "unsat-filter" ds
  | Error e -> Alcotest.failf "parse error: %s" e);
  match Unistore.check store "SELECT" with
  | Ok _ -> Alcotest.fail "truncated query parsed"
  | Error e ->
    Alcotest.(check bool) "positioned parse error" true (contains_sub e "line")

(* ------------------------------------------------------------------ *)
(* Trace linter *)

let ev ?(outcome = Trace.Delivered) tr ~corr ~time ~kind ~src ~dst () =
  let e = Trace.record tr ~corr ~time ~src ~dst ~kind ~bytes:32 () in
  e.Trace.outcome <- outcome

let lint ?allowed_revisits ?metrics tr =
  Tracelint.lint ?allowed_revisits ?metrics ~rules:Tracelint.pgrid_rules tr

let test_lint_clean () =
  let tr = Trace.create () in
  ev tr ~corr:1 ~time:1.0 ~kind:"lookup" ~src:0 ~dst:1 ();
  ev tr ~corr:1 ~time:2.0 ~kind:"found" ~src:1 ~dst:0 ();
  ev tr ~corr:2 ~time:3.0 ~kind:"insert" ~src:0 ~dst:2 ();
  ev tr ~corr:2 ~time:4.0 ~kind:"ack" ~src:2 ~dst:0 ();
  check_clean "well-formed trace" (lint tr)

let test_lint_orphan_reply () =
  let tr = Trace.create () in
  ev tr ~corr:9 ~time:1.0 ~kind:"found" ~src:1 ~dst:0 ();
  check_has "reply without request" "orphan-reply" (lint tr)

let test_lint_multi_reply () =
  let tr = Trace.create () in
  ev tr ~corr:4 ~time:1.0 ~kind:"lookup" ~src:0 ~dst:1 ();
  ev tr ~corr:4 ~time:2.0 ~kind:"found" ~src:1 ~dst:0 ();
  ev tr ~corr:4 ~time:3.0 ~kind:"found" ~src:1 ~dst:0 ();
  check_has "two replies to a single-reply request" "multi-reply" (lint tr);
  (* Fan-out replies are legitimate for range queries. *)
  let tr2 = Trace.create () in
  ev tr2 ~corr:5 ~time:1.0 ~kind:"range" ~src:0 ~dst:1 ();
  ev tr2 ~corr:5 ~time:2.0 ~kind:"range-hit" ~src:1 ~dst:0 ();
  ev tr2 ~corr:5 ~time:3.0 ~kind:"range-hit" ~src:2 ~dst:0 ();
  check_clean "multi-reply rule for range" (lint tr2)

let test_lint_routing_loop () =
  let tr = Trace.create () in
  ev tr ~corr:7 ~time:1.0 ~kind:"lookup" ~src:0 ~dst:3 ();
  ev tr ~corr:7 ~time:2.0 ~kind:"lookup" ~src:5 ~dst:3 ();
  ev tr ~corr:7 ~time:3.0 ~kind:"found" ~src:3 ~dst:0 ();
  check_has "same request revisits a peer" "routing-loop" (lint tr);
  Alcotest.(check bool) "retries tolerated when allowed" false
    (has "routing-loop" (lint ~allowed_revisits:1 tr))

let test_lint_clock_regression () =
  let tr = Trace.create () in
  ev tr ~corr:1 ~time:5.0 ~kind:"lookup" ~src:0 ~dst:1 ();
  ev tr ~corr:1 ~time:1.0 ~kind:"found" ~src:1 ~dst:0 ();
  check_has "time went backwards" "clock-regression" (lint tr)

let test_lint_conservation () =
  let tr = Trace.create () in
  ev tr ~corr:1 ~time:1.0 ~kind:"lookup" ~src:0 ~dst:1 ();
  ev tr ~corr:1 ~time:2.0 ~kind:"found" ~src:1 ~dst:0 ();
  let good = Metrics.create () in
  Metrics.incr good ~by:2 "net.sent";
  Metrics.incr good "net.sent.lookup";
  Metrics.incr good "net.sent.found";
  check_clean "counts agree" (lint ~metrics:good tr);
  let bad = Metrics.create () in
  Metrics.incr bad ~by:3 "net.sent";
  Metrics.incr bad ~by:2 "net.sent.lookup";
  Metrics.incr bad "net.sent.found";
  Metrics.incr bad "net.sent.ack";
  check_has "counts disagree" "conservation" (lint ~metrics:bad tr)

(* A trace kind the static protocol table does not know about means a
   message was added to the code without a table entry. *)
let test_lint_unknown_kind () =
  let tr = Trace.create () in
  ev tr ~corr:1 ~time:1.0 ~kind:"lookup" ~src:0 ~dst:1 ();
  ev tr ~corr:1 ~time:2.0 ~kind:"turbo-lookup" ~src:1 ~dst:0 ();
  check_has "kind missing from Protocol table" "unknown-kind" (lint tr);
  (* Fault markers are injection bookkeeping, not protocol messages. *)
  let tr2 = Trace.create () in
  ev tr2 ~corr:1 ~time:1.0 ~kind:"lookup" ~src:0 ~dst:1 ();
  ev tr2 ~corr:1 ~time:1.5 ~kind:"found" ~src:1 ~dst:0 ();
  ev tr2 ~corr:(-1) ~time:2.0 ~kind:"fault.crash" ~src:1 ~dst:1 ();
  Alcotest.(check bool) "fault markers exempt" false (has "unknown-kind" (lint tr2))

let test_lint_in_flight () =
  let tr = Trace.create () in
  ev tr ~outcome:Trace.In_flight ~corr:1 ~time:1.0 ~kind:"lookup" ~src:0 ~dst:1 ();
  check_has "unresolved event" "in-flight" (lint tr);
  Alcotest.(check bool) "only informational" false (D.has_errors (lint tr))

(* Fault markers are recorded outside Net.send, so they must not count
   against message-conservation — a traced deployment under fault
   injection would otherwise always "lose" the marker events. *)
let test_lint_conservation_skips_fault_marks () =
  let tr = Trace.create () in
  ev tr ~corr:1 ~time:1.0 ~kind:"lookup" ~src:0 ~dst:1 ();
  Trace.mark tr ~time:1.5 ~src:4 ~kind:"fault.crash" ();
  ev tr ~corr:1 ~time:2.0 ~kind:"found" ~src:1 ~dst:0 ();
  Trace.mark tr ~time:2.5 ~src:4 ~kind:"fault.revive" ();
  let good = Metrics.create () in
  Metrics.incr good ~by:2 "net.sent";
  Metrics.incr good "net.sent.lookup";
  Metrics.incr good "net.sent.found";
  check_clean "fault marks are not sends" (lint ~metrics:good tr)

(* Fixture pair for the crash-handling check: a request eaten by a
   crashed peer must be followed by a retry, a failover, or an explicit
   partial-result marker. *)
let test_lint_unhandled_crash () =
  (* Defect: the crash eats the request and nothing follows. *)
  let tr = Trace.create () in
  Trace.mark tr ~time:0.5 ~src:1 ~kind:"fault.crash" ();
  ev tr ~outcome:Trace.To_dead ~corr:7 ~time:1.0 ~kind:"lookup" ~src:0 ~dst:1 ();
  check_has "crash swallowed a request" "unhandled-crash" (lint tr);
  Alcotest.(check bool) "reported as an error" true (D.has_errors (lint tr));
  (* Clean: the same crash, but a retry reaches a living replica. *)
  let tr2 = Trace.create () in
  Trace.mark tr2 ~time:0.5 ~src:1 ~kind:"fault.crash" ();
  ev tr2 ~outcome:Trace.To_dead ~corr:7 ~time:1.0 ~kind:"lookup" ~src:0 ~dst:1 ();
  ev tr2 ~corr:7 ~time:2.0 ~kind:"lookup" ~src:0 ~dst:2 ();
  ev tr2 ~corr:7 ~time:3.0 ~kind:"found" ~src:2 ~dst:0 ();
  check_clean "retry absolves the crash" (lint tr2);
  (* Also clean: graceful degradation via an explicit partial marker. *)
  let tr3 = Trace.create () in
  Trace.mark tr3 ~time:0.5 ~src:1 ~kind:"fault.crash" ();
  ev tr3 ~outcome:Trace.To_dead ~corr:9 ~time:1.0 ~kind:"range" ~src:0 ~dst:1 ();
  Trace.mark tr3 ~corr:9 ~time:5.0 ~src:0 ~kind:"fault.partial" ();
  check_clean "partial marker absolves the crash" (lint tr3)

(* ------------------------------------------------------------------ *)
(* Overlay auditor *)

let random_words rng n =
  List.init n (fun _ ->
      String.init (4 + Rng.int rng 8) (fun _ -> Char.chr (Char.code 'a' + Rng.int rng 26)))

let build_pgrid ?(n = 16) () =
  let sim = Sim.create () in
  let rng = Rng.create 11 in
  let latency = Latency.create (Latency.Constant 1.0) ~n ~rng in
  let keys = random_words rng 100 in
  let ov =
    Build.oracle sim ~latency ~rng ~drop:0.0 ~config:Config.default ~n ~sample_keys:keys
      ~balanced:true ()
  in
  List.iteri
    (fun i k ->
      ignore
        (Overlay.insert_sync ov ~origin:(i mod n) ~key:k ~item_id:(Printf.sprintf "id%d" i)
           ~payload:k ()))
    keys;
  Sim.run_all sim;
  ov

let test_audit_pgrid_clean () = check_clean "freshly built overlay" (Audit.pgrid (build_pgrid ()))

let test_audit_pgrid_split_arity () =
  let ov = build_pgrid () in
  let nd = List.find (fun (nd : Node.t) -> Bitkey.length nd.Node.path > 0) (Overlay.nodes ov) in
  nd.Node.splits <- Array.sub nd.Node.splits 0 (Array.length nd.Node.splits - 1);
  nd.Node.region_cache <- None;
  check_has "truncated split boundaries" "split-arity" (Audit.pgrid ov)

let test_audit_pgrid_misplaced_item () =
  let ov = build_pgrid () in
  let nd = List.find (fun (nd : Node.t) -> Bitkey.length nd.Node.path > 0) (Overlay.nodes ov) in
  (* One of the key-space extremes must fall outside a non-root region. *)
  let bad_key = if Node.covers nd "" then "\xff\xff\xff\xff" else "" in
  assert (not (Node.covers nd bad_key));
  ignore (Store.put nd.Node.store { Store.key = bad_key; item_id = "intruder"; payload = "x"; version = 0 });
  check_has "item outside the peer's region" "misplaced-item" (Audit.pgrid ov)

let test_audit_pgrid_bad_ref () =
  let ov = build_pgrid () in
  let nd =
    List.find
      (fun (nd : Node.t) -> Array.length nd.Node.refs > 0 && nd.Node.refs.(0) <> [])
      (Overlay.nodes ov)
  in
  (* A peer must never appear in its own complementary subtree. *)
  nd.Node.refs.(0) <- [ nd.Node.id ];
  check_has "self-reference at level 0" "bad-ref" (Audit.pgrid ov)

let test_audit_pgrid_replica_divergence () =
  let ov = build_pgrid () in
  let nd = List.find (fun (nd : Node.t) -> nd.Node.replicas <> []) (Overlay.nodes ov) in
  ignore
    (Store.put nd.Node.store
       { Store.key = "~local-only"; item_id = "drift"; payload = "x"; version = 0 });
  (* The extra item both diverges from the replica group and (depending
     on the region) may be misplaced; the divergence warning must be
     there either way. *)
  check_has "replica holds an extra item" "replica-divergence" (Audit.pgrid ov)

let mkchord ?(n = 16) () =
  let sim = Sim.create () in
  let rng = Rng.create 5 in
  let latency = Latency.create (Latency.Constant 1.0) ~n ~rng in
  Chord.create sim ~latency ~rng ~config:Chord.default_config ~n ()

let test_audit_chord_clean () = check_clean "freshly built ring" (Audit.chord (mkchord ()))

let test_audit_chord_dead_successors () =
  let c = mkchord () in
  let id = List.hd (Chord.peers c) in
  List.iter (Chord.kill c) (Chord.successors c id);
  let ds = Audit.chord c in
  check_has "alive peer with all successors dead" "dead-successors" ds;
  Alcotest.(check bool) "structure itself still sound" false (D.has_errors ds)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "unistore_analysis"
    [
      ( "semantic",
        [
          Alcotest.test_case "unbound variable" `Quick test_sem_unbound;
          Alcotest.test_case "unused variable" `Quick test_sem_unused;
          Alcotest.test_case "type clash" `Quick test_sem_type_clash;
          Alcotest.test_case "unknown attribute" `Quick test_sem_unknown_attr;
          Alcotest.test_case "contradictory range" `Quick test_sem_unsat_range;
          Alcotest.test_case "impossible edit distance" `Quick test_sem_unsat_edist;
          Alcotest.test_case "cartesian product" `Quick test_sem_cartesian;
          Alcotest.test_case "bad top-N parameter" `Quick test_sem_bad_limit;
          Alcotest.test_case "paper demo query is clean" `Quick test_sem_paper_query_clean;
        ] );
      ( "engine-gate",
        [
          Alcotest.test_case "unsat query refused" `Quick test_engine_refuses_unsat;
          Alcotest.test_case "facade check" `Quick test_facade_check;
        ] );
      ( "tracelint",
        [
          Alcotest.test_case "clean trace" `Quick test_lint_clean;
          Alcotest.test_case "orphan reply" `Quick test_lint_orphan_reply;
          Alcotest.test_case "multi reply" `Quick test_lint_multi_reply;
          Alcotest.test_case "routing loop" `Quick test_lint_routing_loop;
          Alcotest.test_case "clock regression" `Quick test_lint_clock_regression;
          Alcotest.test_case "conservation vs metrics" `Quick test_lint_conservation;
          Alcotest.test_case "in-flight is informational" `Quick test_lint_in_flight;
          Alcotest.test_case "unknown kind vs protocol table" `Quick test_lint_unknown_kind;
          Alcotest.test_case "conservation skips fault marks" `Quick
            test_lint_conservation_skips_fault_marks;
          Alcotest.test_case "unhandled crash" `Quick test_lint_unhandled_crash;
        ] );
      ( "audit",
        [
          Alcotest.test_case "pgrid clean" `Quick test_audit_pgrid_clean;
          Alcotest.test_case "pgrid split arity" `Quick test_audit_pgrid_split_arity;
          Alcotest.test_case "pgrid misplaced item" `Quick test_audit_pgrid_misplaced_item;
          Alcotest.test_case "pgrid bad ref" `Quick test_audit_pgrid_bad_ref;
          Alcotest.test_case "pgrid replica divergence" `Quick test_audit_pgrid_replica_divergence;
          Alcotest.test_case "chord clean" `Quick test_audit_chord_clean;
          Alcotest.test_case "chord dead successors" `Quick test_audit_chord_dead_successors;
        ] );
    ]
