(* Unit and property tests for the observability layer (unistore_obs):
   histogram bucket/percentile math, metrics registry semantics, and the
   JSON encoder/decoder round-trip. *)

open Unistore_obs

let check = Alcotest.check
let qtest ?(count = 500) name gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let checkf = check (Alcotest.float 1e-9)

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_histo_empty () =
  let h = Histogram.create () in
  check Alcotest.int "count" 0 (Histogram.count h);
  checkf "sum" 0.0 (Histogram.sum h);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Histogram.mean h));
  Alcotest.(check bool) "p50 nan" true (Float.is_nan (Histogram.percentile h 50.0));
  Alcotest.(check bool) "min nan" true (Float.is_nan (Histogram.min_value h))

let test_histo_single_sample () =
  let h = Histogram.create () in
  Histogram.observe h 7.3;
  check Alcotest.int "count" 1 (Histogram.count h);
  (* Clamping into [min, max] makes every percentile of one sample the
     sample itself, not a bucket edge. *)
  checkf "p50" 7.3 (Histogram.percentile h 50.0);
  checkf "p99" 7.3 (Histogram.percentile h 99.0);
  checkf "p0" 7.3 (Histogram.percentile h 0.0);
  checkf "mean" 7.3 (Histogram.mean h)

let test_histo_all_in_one_bucket () =
  (* Bounds 10/20/30: every sample lands in the first bucket. *)
  let h = Histogram.create ~buckets:[ 10.; 20.; 30. ] () in
  List.iter (Histogram.observe h) [ 3.0; 4.0; 5.0 ];
  let p50 = Histogram.percentile h 50.0 in
  Alcotest.(check bool) "p50 within observed range" true (p50 >= 3.0 && p50 <= 5.0);
  checkf "p100 = max" 5.0 (Histogram.percentile h 100.0);
  checkf "p0 = min" 3.0 (Histogram.percentile h 0.0)

let test_histo_overflow_bucket () =
  let h = Histogram.create ~buckets:[ 1.; 2. ] () in
  List.iter (Histogram.observe h) [ 0.5; 100.0; 200.0 ];
  check Alcotest.int "count" 3 (Histogram.count h);
  (match Histogram.buckets h with
  | [ (_, c1); (_, c2); (inf_b, c3) ] ->
    check Alcotest.int "first bucket" 1 c1;
    check Alcotest.int "second bucket" 0 c2;
    check Alcotest.int "overflow count" 2 c3;
    Alcotest.(check bool) "overflow bound" true (inf_b = Float.infinity)
  | _ -> Alcotest.fail "expected 3 buckets");
  (* Inside the overflow bucket interpolation uses the observed max as the
     upper edge, so percentiles stay within the data and p100 is exact. *)
  let p99 = Histogram.percentile h 99.0 in
  Alcotest.(check bool) "p99 bounded by data" true (p99 > 2.0 && p99 <= 200.0);
  checkf "p100 = max" 200.0 (Histogram.percentile h 100.0)

let test_histo_uniform_percentiles () =
  (* 1..100 on unit buckets: percentiles should track ranks closely. *)
  let h = Histogram.create ~buckets:(Histogram.linear ~lo:1.0 ~step:1.0 ~n:100) () in
  for i = 1 to 100 do
    Histogram.observe h (float_of_int i)
  done;
  let p50 = Histogram.percentile h 50.0 in
  let p95 = Histogram.percentile h 95.0 in
  let p99 = Histogram.percentile h 99.0 in
  Alcotest.(check bool) "p50 near 50" true (Float.abs (p50 -. 50.0) <= 1.0);
  Alcotest.(check bool) "p95 near 95" true (Float.abs (p95 -. 95.0) <= 1.0);
  Alcotest.(check bool) "p99 near 99" true (Float.abs (p99 -. 99.0) <= 1.0);
  checkf "mean" 50.5 (Histogram.mean h);
  checkf "sum" 5050.0 (Histogram.sum h)

let test_histo_rejects_bad_buckets () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Histogram.create: buckets must be non-empty and increasing") (fun () ->
      ignore (Histogram.create ~buckets:[] ()));
  Alcotest.check_raises "not increasing"
    (Invalid_argument "Histogram.create: buckets must be non-empty and increasing") (fun () ->
      ignore (Histogram.create ~buckets:[ 2.0; 1.0 ] ()))

let test_histo_negative_values () =
  let h = Histogram.create ~buckets:[ -5.; 0.; 5. ] () in
  List.iter (Histogram.observe h) [ -7.0; -1.0; 3.0 ];
  checkf "min" (-7.0) (Histogram.min_value h);
  checkf "max" 3.0 (Histogram.max_value h);
  let p50 = Histogram.percentile h 50.0 in
  Alcotest.(check bool) "p50 in range" true (p50 >= -7.0 && p50 <= 3.0)

let percentile_monotone =
  qtest "percentile monotone in p" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.observe h) xs;
      let ps = [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 100.0 ] in
      let vs = List.map (Histogram.percentile h) ps in
      let rec mono = function a :: (b :: _ as rest) -> a <= b && mono rest | _ -> true in
      mono vs)

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_counter_semantics () =
  let m = Metrics.create () in
  check Alcotest.int "absent = 0" 0 (Metrics.counter m "x");
  Metrics.incr m "x";
  Metrics.incr m "x" ~by:5;
  check Alcotest.int "1 + 5" 6 (Metrics.counter m "x");
  Metrics.incr m "y";
  check Alcotest.int "independent" 1 (Metrics.counter m "y");
  Alcotest.(check (list (pair string int)))
    "sorted listing"
    [ ("x", 6); ("y", 1) ]
    (Metrics.counters m)

let test_gauge_semantics () =
  let m = Metrics.create () in
  Alcotest.(check (option (float 0.0))) "absent" None (Metrics.gauge m "g");
  Metrics.set_gauge m "g" 2.5;
  Metrics.set_gauge m "g" 3.5;
  Alcotest.(check (option (float 0.0))) "last write wins" (Some 3.5) (Metrics.gauge m "g")

let test_histogram_find_or_create () =
  let m = Metrics.create () in
  Metrics.observe m "h" ~buckets:[ 1.; 10. ] 5.0;
  (* Buckets on later touches are ignored: same series. *)
  Metrics.observe m "h" ~buckets:[ 99. ] 7.0;
  let h = Metrics.histogram m "h" in
  check Alcotest.int "one series, two samples" 2 (Histogram.count h)

let test_clear () =
  let m = Metrics.create () in
  Metrics.incr m "c";
  Metrics.set_gauge m "g" 1.0;
  Metrics.observe m "h" 1.0;
  Metrics.clear m;
  check Alcotest.int "counter gone" 0 (Metrics.counter m "c");
  Alcotest.(check (option (float 0.0))) "gauge gone" None (Metrics.gauge m "g");
  Alcotest.(check (list (pair string int))) "no counters" [] (Metrics.counters m)

let test_metrics_json_shape () =
  let m = Metrics.create () in
  Metrics.incr m "net.sent" ~by:3;
  Metrics.set_gauge m "depth" 4.0;
  Metrics.observe m "hops" 2.0;
  let j = Metrics.to_json m in
  (match Json.of_string (Json.to_string j) with
  | Error e -> Alcotest.failf "metrics JSON does not parse: %s" e
  | Ok parsed ->
    Alcotest.(check bool) "round-trips" true (parsed = j);
    (match Json.member "counters" parsed with
    | Some (Json.Obj [ ("net.sent", Json.Int 3) ]) -> ()
    | _ -> Alcotest.fail "counters member wrong");
    (match Json.member "histograms" parsed with
    | Some (Json.Obj [ ("hops", h) ]) ->
      (match Json.member "count" h with
      | Some (Json.Int 1) -> ()
      | _ -> Alcotest.fail "histogram count wrong")
    | _ -> Alcotest.fail "histograms member wrong"))

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_encode_basics () =
  check Alcotest.string "null" "null" (Json.to_string ~minify:true Json.Null);
  check Alcotest.string "escapes" "\"a\\\"b\\\\c\\nd\""
    (Json.to_string ~minify:true (Json.Str "a\"b\\c\nd"));
  check Alcotest.string "nan -> null" "null" (Json.to_string ~minify:true (Json.Float Float.nan));
  check Alcotest.string "inf -> null" "null"
    (Json.to_string ~minify:true (Json.Float Float.infinity));
  check Alcotest.string "compound" "{\"a\":[1,2.5,true],\"b\":{}}"
    (Json.to_string ~minify:true
       (Json.Obj [ ("a", Json.Arr [ Json.Int 1; Json.Float 2.5; Json.Bool true ]); ("b", Json.Obj []) ]))

let test_json_parse_basics () =
  let ok s v =
    match Json.of_string s with
    | Ok v' -> Alcotest.(check bool) (Printf.sprintf "parse %s" s) true (v = v')
    | Error e -> Alcotest.failf "parse %s failed: %s" s e
  in
  ok "null" Json.Null;
  ok " [ 1 , -2 , 3.5e2 ] " (Json.Arr [ Json.Int 1; Json.Int (-2); Json.Float 350.0 ]);
  ok "{\"k\": \"v\\u0041\"}" (Json.Obj [ ("k", Json.Str "vA") ]);
  (match Json.of_string "[1," with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated input accepted");
  match Json.of_string "{} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted"

let json_gen =
  let open QCheck2.Gen in
  sized_size (int_range 0 3) (fun n ->
      fix
        (fun self n ->
          let scalar =
            oneof
              [
                return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
                (* Halves round-trip exactly through %.12g. *)
                map (fun i -> Json.Float (float_of_int i /. 2.0)) (int_range (-10000) 10000);
                map (fun s -> Json.Str s) (string_size ~gen:printable (int_range 0 12));
              ]
          in
          if n = 0 then scalar
          else
            oneof
              [
                scalar;
                map (fun xs -> Json.Arr xs) (list_size (int_range 0 4) (self (n - 1)));
                map
                  (fun kvs ->
                    (* Object keys must be distinct or assoc-equality breaks. *)
                    let seen = Hashtbl.create 8 in
                    Json.Obj
                      (List.filter
                         (fun (k, _) ->
                           if Hashtbl.mem seen k then false
                           else begin
                             Hashtbl.replace seen k ();
                             true
                           end)
                         kvs))
                  (list_size (int_range 0 4)
                     (pair (string_size ~gen:printable (int_range 0 8)) (self (n - 1))));
              ])
        n)

let json_roundtrip =
  qtest "encode/decode round-trip" ~count:300 json_gen (fun v ->
      match Json.of_string (Json.to_string v) with
      | Ok v' -> v = v'
      | Error _ -> false)

let json_roundtrip_minified =
  qtest "minified round-trip" ~count:300 json_gen (fun v ->
      match Json.of_string (Json.to_string ~minify:true v) with
      | Ok v' -> v = v'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Profile *)

let test_profile_json_shape () =
  let p =
    {
      Profile.query = Some "SELECT ?n WHERE { (?a,'name',?n) }";
      strategy = "centralized";
      rows = 2;
      messages = 10;
      latency_ms = 12.5;
      bytes_shipped = 0;
      complete = true;
      completeness = 1.0;
      ops =
        [
          {
            Profile.label = "(?a,'name',?n)";
            access = "av-scan(name)";
            carrier = 3;
            rows_in = 0;
            rows_out = 2;
            messages = 10;
            latency_ms = 12.5;
          };
        ];
    }
  in
  match Json.of_string (Json.to_string (Profile.to_json p)) with
  | Error e -> Alcotest.failf "profile JSON does not parse: %s" e
  | Ok j -> (
    (match Json.member "operators" j with
    | Some (Json.Arr [ op ]) -> (
      match (Json.member "rows_out" op, Json.member "carrier" op) with
      | Some (Json.Int 2), Some (Json.Int 3) -> ()
      | _ -> Alcotest.fail "operator fields wrong")
    | _ -> Alcotest.fail "operators member wrong");
    match Json.member "complete" j with
    | Some (Json.Bool true) -> ()
    | _ -> Alcotest.fail "complete member wrong")

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_histo_empty;
          Alcotest.test_case "single sample" `Quick test_histo_single_sample;
          Alcotest.test_case "all in one bucket" `Quick test_histo_all_in_one_bucket;
          Alcotest.test_case "overflow bucket" `Quick test_histo_overflow_bucket;
          Alcotest.test_case "uniform percentiles" `Quick test_histo_uniform_percentiles;
          Alcotest.test_case "rejects bad buckets" `Quick test_histo_rejects_bad_buckets;
          Alcotest.test_case "negative values" `Quick test_histo_negative_values;
          percentile_monotone;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
          Alcotest.test_case "gauge semantics" `Quick test_gauge_semantics;
          Alcotest.test_case "histogram find-or-create" `Quick test_histogram_find_or_create;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "to_json shape" `Quick test_metrics_json_shape;
        ] );
      ( "json",
        [
          Alcotest.test_case "encode basics" `Quick test_json_encode_basics;
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          json_roundtrip;
          json_roundtrip_minified;
        ] );
      ("profile", [ Alcotest.test_case "to_json shape" `Quick test_profile_json_shape ]);
    ]
