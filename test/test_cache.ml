(* Tests for the multi-level caching subsystem (unistore_cache) and its
   integration: routing shortcuts in the P-Grid overlay, the query
   origin's result cache, and the gossiped statistics the optimizer
   plans from. *)

module Rng = Unistore_util.Rng
module Sim = Unistore_sim.Sim
module Latency = Unistore_sim.Latency
module Lru = Unistore_cache.Lru
module Shortcuts = Unistore_cache.Shortcuts
module Result_cache = Unistore_cache.Result_cache
module Statcache = Unistore_cache.Statcache
module Metrics = Unistore_obs.Metrics
module Config = Unistore_pgrid.Config
module Node = Unistore_pgrid.Node
module Overlay = Unistore_pgrid.Overlay
module Build = Unistore_pgrid.Build
module Gossip = Unistore_pgrid.Gossip
module Stat_sample = Unistore_triple.Stat_sample
module Keys = Unistore_triple.Keys
module Publications = Unistore_workload.Publications
module Qstats = Unistore_qproc.Qstats
module Cost = Unistore_qproc.Cost
module Optimizer = Unistore_qproc.Optimizer
module Physical = Unistore_qproc.Physical
module Parser = Unistore_vql.Parser
module Tracelint = Unistore_analysis.Tracelint
module Value = Unistore.Value
module Triple = Unistore.Triple

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Lru *)

let test_lru_eviction_order () =
  let t = Lru.create ~capacity:3 in
  Lru.put t "a" 1;
  Lru.put t "b" 2;
  Lru.put t "c" 3;
  check Alcotest.(option int) "find refreshes" (Some 1) (Lru.find t "a");
  Lru.put t "d" 4;
  (* "b" was least recently used once "a" was re-read. *)
  check Alcotest.(option int) "b evicted" None (Lru.peek t "b");
  check Alcotest.(option int) "a kept" (Some 1) (Lru.peek t "a");
  check Alcotest.int "still bounded" 3 (Lru.length t)

let test_lru_peek_no_refresh () =
  let t = Lru.create ~capacity:3 in
  Lru.put t "a" 1;
  Lru.put t "b" 2;
  Lru.put t "c" 3;
  ignore (Lru.peek t "a");
  Lru.put t "d" 4;
  check Alcotest.(option int) "peek did not save a" None (Lru.peek t "a");
  check Alcotest.(option int) "b survived" (Some 2) (Lru.peek t "b")

let test_lru_capacity_zero_disabled () =
  let t = Lru.create ~capacity:0 in
  Lru.put t "a" 1;
  check Alcotest.int "nothing stored" 0 (Lru.length t);
  check Alcotest.(option int) "nothing found" None (Lru.find t "a")

let test_lru_filter_and_shrink () =
  let t = Lru.create ~capacity:8 in
  List.iter (fun i -> Lru.put t (string_of_int i) i) [ 1; 2; 3; 4 ];
  let removed = Lru.filter_inplace t (fun _ v -> v mod 2 = 0) in
  check Alcotest.int "odd entries removed" 2 removed;
  check Alcotest.int "even entries kept" 2 (Lru.length t);
  Lru.set_capacity t 1;
  check Alcotest.int "shrunk to new capacity" 1 (Lru.length t);
  Lru.set_capacity t 0;
  check Alcotest.int "capacity 0 empties" 0 (Lru.length t)

(* Eviction and traversal must be deterministic functions of the
   operation history, never of hash-bucket order: [iter] visits in key
   order, and the eviction victim is the (used, key) minimum — the key
   breaks recency ties. *)
let test_lru_deterministic_order () =
  let keys = [ "delta"; "alpha"; "echo"; "charlie"; "bravo" ] in
  let t = Lru.create ~capacity:8 in
  List.iter (fun k -> Lru.put t k 0) keys;
  let visited = ref [] in
  Lru.iter t (fun k _ -> visited := k :: !visited);
  check
    Alcotest.(list string)
    "iter in key order"
    (List.sort String.compare keys)
    (List.rev !visited);
  (* Same entries inserted in a different order, then evicted down to
     one: the survivor set depends only on recency, and with recency
     forced equal by re-insertion the traversal stays key-ordered. *)
  let u = Lru.create ~capacity:8 in
  List.iter (fun k -> Lru.put u k 0) (List.rev keys);
  let visited_u = ref [] in
  Lru.iter u (fun k _ -> visited_u := k :: !visited_u);
  check Alcotest.(list string) "iter order is insertion-independent" (List.rev !visited)
    (List.rev !visited_u)

(* ------------------------------------------------------------------ *)
(* Shortcuts *)

let test_shortcuts_containment () =
  let t = Shortcuts.create ~capacity:4 in
  Shortcuts.learn t ~lo:"b" ~hi:(Some "d") ~peer:7;
  Shortcuts.learn t ~lo:"x" ~hi:None ~peer:9;
  check Alcotest.(option int) "inside region" (Some 7) (Shortcuts.find t ~key:"c");
  check Alcotest.(option int) "at lo (inclusive)" (Some 7) (Shortcuts.find t ~key:"b");
  check Alcotest.(option int) "at hi (exclusive)" None (Shortcuts.find t ~key:"d");
  check Alcotest.(option int) "below all regions" None (Shortcuts.find t ~key:"a");
  check Alcotest.(option int) "unbounded region" (Some 9) (Shortcuts.find t ~key:"zzz")

let test_shortcuts_invalidate_peer () =
  let t = Shortcuts.create ~capacity:4 in
  Shortcuts.learn t ~lo:"a" ~hi:(Some "g") ~peer:3;
  Shortcuts.learn t ~lo:"g" ~hi:(Some "m") ~peer:3;
  Shortcuts.learn t ~lo:"m" ~hi:(Some "p") ~peer:5;
  check Alcotest.int "both entries for 3 dropped" 2 (Shortcuts.invalidate_peer t 3);
  check Alcotest.(option int) "peer 3 forgotten" None (Shortcuts.find t ~key:"c");
  check Alcotest.(option int) "peer 5 untouched" (Some 5) (Shortcuts.find t ~key:"n")

let test_shortcuts_capacity_zero_disabled () =
  let t = Shortcuts.create ~capacity:0 in
  Shortcuts.learn t ~lo:"a" ~hi:None ~peer:1;
  check Alcotest.int "disabled" 0 (Shortcuts.length t);
  check Alcotest.(option int) "no hit" None (Shortcuts.find t ~key:"b")

(* ------------------------------------------------------------------ *)
(* Result cache *)

let test_result_cache_version_and_ttl () =
  let m = Metrics.create () in
  let t = Result_cache.create ~name:"c" ~metrics:m ~capacity:8 ~ttl_ms:100.0 () in
  Result_cache.put t ~key:"k" ~version:1 ~now:0.0 "v";
  check Alcotest.(option string) "hit under same version" (Some "v")
    (Result_cache.find t ~key:"k" ~version:1 ~now:50.0);
  check Alcotest.int "hit counted" 1 (Metrics.counter m "c.hit");
  check Alcotest.(option string) "newer version invalidates" None
    (Result_cache.find t ~key:"k" ~version:2 ~now:50.0);
  check Alcotest.int "stale_version counted" 1 (Metrics.counter m "c.stale_version");
  Result_cache.put t ~key:"k" ~version:2 ~now:50.0 "v2";
  check Alcotest.(option string) "TTL expires entries" None
    (Result_cache.find t ~key:"k" ~version:2 ~now:200.0);
  check Alcotest.int "stale_ttl counted" 1 (Metrics.counter m "c.stale_ttl");
  check Alcotest.(option string) "absent key" None
    (Result_cache.find t ~key:"nope" ~version:1 ~now:0.0);
  check Alcotest.int "miss counted" 1 (Metrics.counter m "c.miss")

let test_result_cache_mem_is_pure () =
  let m = Metrics.create () in
  let t = Result_cache.create ~name:"c" ~metrics:m ~capacity:2 ~ttl_ms:100.0 () in
  Result_cache.put t ~key:"a" ~version:1 ~now:0.0 "va";
  Result_cache.put t ~key:"b" ~version:1 ~now:0.0 "vb";
  check Alcotest.bool "mem true on current entry" true
    (Result_cache.mem t ~key:"a" ~version:1 ~now:10.0);
  check Alcotest.bool "mem false on version change" false
    (Result_cache.mem t ~key:"a" ~version:2 ~now:10.0);
  check Alcotest.bool "mem false past TTL" false
    (Result_cache.mem t ~key:"a" ~version:1 ~now:500.0);
  List.iter
    (fun c -> check Alcotest.int ("no counter " ^ c) 0 (Metrics.counter m ("c." ^ c)))
    [ "hit"; "miss"; "stale_version"; "stale_ttl" ];
  (* mem must not refresh recency: "a" (older) is still the eviction
     victim even after being probed. *)
  ignore (Result_cache.mem t ~key:"a" ~version:1 ~now:10.0);
  Result_cache.put t ~key:"d" ~version:1 ~now:10.0 "vd";
  check Alcotest.bool "a evicted despite mem probes" false
    (Result_cache.mem t ~key:"a" ~version:1 ~now:10.0);
  check Alcotest.bool "b survived" true (Result_cache.mem t ~key:"b" ~version:1 ~now:10.0)

(* ------------------------------------------------------------------ *)
(* Qcache: the query processor's view of the result cache *)

let test_qcache_access_and_bind () =
  let versions = Hashtbl.create 4 in
  let version_of attr = Option.value ~default:0 (Hashtbl.find_opt versions attr) in
  let t =
    Unistore_qproc.Qcache.create ~capacity:16 ~ttl_ms:1000.0 ~now:(fun () -> 0.0) ~version_of ()
  in
  let module Qcache = Unistore_qproc.Qcache in
  let access = Cost.AAttrValue ("age", Value.I 30) in
  let triples = [ Triple.make ~oid:"a1" ~attr:"age" (Value.I 30) ] in
  check Alcotest.bool "cold" false (Qcache.find_access t access <> None);
  Qcache.store_access t access triples;
  (match Qcache.find_access t access with
  | Some [ tr ] -> check Alcotest.string "right answer" "a1" tr.Triple.oid
  | _ -> Alcotest.fail "expected the stored answer");
  check Alcotest.bool "probe agrees" true (Qcache.cached_access t access);
  (* A write to the access's attribute kills the entry... *)
  Hashtbl.replace versions (Some "age") 1;
  check Alcotest.bool "invalidated by attr version" false (Qcache.find_access t access <> None);
  (* ...and ABroadcast (opaque predicate) is never cached. *)
  Qcache.store_access t Cost.ABroadcast triples;
  check Alcotest.bool "broadcast not cached" false (Qcache.find_access t Cost.ABroadcast <> None);
  (* Bind-join probes: per-key, same versioning. *)
  Qcache.store_bind t ~attr:(Some "name") ~key:"k1" triples;
  check Alcotest.bool "bind hit" true (Qcache.find_bind t ~attr:(Some "name") ~key:"k1" <> None);
  check Alcotest.bool "bind miss on other key" false
    (Qcache.find_bind t ~attr:(Some "name") ~key:"k2" <> None);
  Hashtbl.replace versions (Some "name") 7;
  check Alcotest.bool "bind invalidated by attr version" false
    (Qcache.find_bind t ~attr:(Some "name") ~key:"k1" <> None)

let test_qcache_access_keys_do_not_collide () =
  (* pp_access renders S "1" and I 1 identically; access_key must not. *)
  let a = Cost.AAttrValue ("x", Value.S "1") in
  let b = Cost.AAttrValue ("x", Value.I 1) in
  Alcotest.(check bool) "distinct keys for distinct accesses" true
    (Cost.access_key a <> Cost.access_key b);
  Alcotest.(check bool) "stable for equal accesses" true
    (Cost.access_key a = Cost.access_key (Cost.AAttrValue ("x", Value.S "1")))

(* ------------------------------------------------------------------ *)
(* Statcache *)

let summary ?(attr = "age") ?(region_lo = "r0") ?(peer = 1) ?(count = 10) ?(distinct = 5)
    ?(version = 1) ?(sampled_at = 0.0) ?(load = 0) () =
  {
    Statcache.attr;
    region_lo;
    peer;
    count;
    distinct;
    lo = Value.encode (Value.I 0);
    hi = Value.encode (Value.I 100);
    string_valued = false;
    version;
    sampled_at;
    load;
  }

let test_statcache_merge_newest_wins () =
  let t = Statcache.create () in
  check Alcotest.bool "first summary adopted" true (Statcache.merge t (summary ()));
  check Alcotest.bool "same (attr,region,version,time) ignored" false
    (Statcache.merge t (summary ~peer:2 ()));
  check Alcotest.int "replica deduped" 1 (Statcache.length t);
  check Alcotest.bool "higher version wins" true
    (Statcache.merge t (summary ~version:2 ~count:12 ()));
  check Alcotest.bool "stale version rejected" false
    (Statcache.merge t (summary ~version:1 ~count:99 ()));
  check Alcotest.bool "other region adopted" true (Statcache.merge t (summary ~region_lo:"r1" ()));
  check Alcotest.int "two regions held" 2 (Statcache.length t)

let test_statcache_versions_and_aggregate () =
  let t = Statcache.create () in
  ignore (Statcache.merge t (summary ~region_lo:"r0" ~version:2 ~count:10 ()));
  ignore (Statcache.merge t (summary ~region_lo:"r1" ~version:3 ~count:20 ()));
  ignore (Statcache.merge t (summary ~attr:"name" ~region_lo:"r0" ~version:5 ()));
  check Alcotest.int "attr_version sums regions" 5 (Statcache.attr_version t "age");
  check Alcotest.int "total_version sums all" 10 (Statcache.total_version t);
  (match Statcache.aggregate t ~now:0.0 ~half_life_ms:0.0 with
  | [ ("age", age); ("name", _) ] ->
    check (Alcotest.float 0.01) "counts sum across regions" 30.0 age.Statcache.a_count;
    check Alcotest.int "regions counted" 2 age.Statcache.a_regions
  | l -> Alcotest.failf "unexpected aggregate shape (%d attrs)" (List.length l));
  (* With decay, a summary one half-life old counts half. *)
  let t2 = Statcache.create () in
  ignore (Statcache.merge t2 (summary ~count:10 ~sampled_at:0.0 ()));
  match Statcache.aggregate t2 ~now:1000.0 ~half_life_ms:1000.0 with
  | [ ("age", age) ] ->
    check (Alcotest.float 0.01) "half-life halves the weight" 5.0 age.Statcache.a_count
  | _ -> Alcotest.fail "expected one aggregate"

(* ------------------------------------------------------------------ *)
(* Overlay integration: routing shortcuts *)

let random_words rng n =
  List.init n (fun _ ->
      String.init (4 + Rng.int rng 8) (fun _ -> Char.chr (Char.code 'a' + Rng.int rng 26)))

let build_overlay ?(n = 32) ?(seed = 42) ?(drop = 0.0) ?(config = Config.default) ~keys () =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let latency = Latency.create (Latency.Constant 1.0) ~n ~rng in
  Build.oracle sim ~latency ~rng ~drop ~config ~n ~sample_keys:keys ~balanced:false ()

let insert_all ov keys =
  List.iteri
    (fun i k ->
      let origin = i mod Overlay.node_count ov in
      let r =
        Overlay.insert_sync ov ~origin ~key:k ~item_id:(Printf.sprintf "id%d" i) ~payload:k ()
      in
      if not r.Overlay.complete then Alcotest.failf "insert of %S incomplete" k)
    keys

let test_overlay_shortcut_second_lookup_is_direct () =
  let rng = Rng.create 11 in
  let keys = List.sort_uniq compare (random_words rng 20) in
  let config = { Config.default with shortcut_capacity = 64 } in
  let ov = build_overlay ~n:32 ~config ~keys () in
  insert_all ov keys;
  let m = Metrics.create () in
  Overlay.set_metrics ov (Some m);
  (* First pass learns (region -> peer) from the Found replies (a few
     regions are already known from insert Acks)... *)
  List.iter
    (fun k ->
      let r = Overlay.lookup_sync ov ~origin:0 ~key:k in
      Alcotest.(check bool) ("first lookup of " ^ k) true r.Overlay.complete)
    keys;
  Alcotest.(check bool) "regions learned" true (Metrics.counter m "cache.shortcut.learn" > 0);
  let hits_after_first_pass = Metrics.counter m "cache.shortcut.hit" in
  (* ...so the second pass goes to the responsible peer directly. *)
  List.iter
    (fun k ->
      let r = Overlay.lookup_sync ov ~origin:0 ~key:k in
      Alcotest.(check bool) ("repeat lookup of " ^ k) true r.Overlay.complete;
      if r.Overlay.hops > 1 then
        Alcotest.failf "repeat lookup of %S took %d hops (expected <= 1)" k r.Overlay.hops)
    keys;
  (* Keys the origin is itself responsible for resolve locally without
     consulting the cache, hence >= half rather than all. *)
  Alcotest.(check bool) "most repeat lookups hit a shortcut" true
    (Metrics.counter m "cache.shortcut.hit" - hits_after_first_pass >= List.length keys / 2)

let test_overlay_shortcut_dead_peer_invalidated () =
  let rng = Rng.create 12 in
  let keys = List.sort_uniq compare (random_words rng 20) in
  let config = { Config.default with shortcut_capacity = 64; replication = 3 } in
  let ov = build_overlay ~n:32 ~config ~keys () in
  insert_all ov keys;
  let m = Metrics.create () in
  Overlay.set_metrics ov (Some m);
  (* Find a key whose learned shortcut points away from the origin. *)
  let origin = 0 in
  List.iter (fun k -> ignore (Overlay.lookup_sync ov ~origin ~key:k)) keys;
  let shortcuts = (Overlay.node ov origin).Node.shortcuts in
  let key, victim =
    match
      List.filter_map
        (fun k ->
          match Shortcuts.find shortcuts ~key:k with
          | Some p when p <> origin -> Some (k, p)
          | _ -> None)
        keys
    with
    | kv :: _ -> kv
    | [] -> Alcotest.fail "no shortcut learned away from origin"
  in
  Overlay.kill ov victim;
  let r = Overlay.lookup_sync ov ~origin ~key in
  Alcotest.(check bool) "lookup survives dead shortcut target" true r.Overlay.complete;
  Alcotest.(check bool) "lookup still finds a replica" true (r.Overlay.items <> []);
  Alcotest.(check bool) "dead peer invalidated" true
    (Metrics.counter m "cache.shortcut.invalidate" > 0);
  (match Shortcuts.find shortcuts ~key with
  | Some p when p = victim -> Alcotest.fail "shortcut still points at the dead peer"
  | _ -> ());
  Overlay.revive ov victim

(* ------------------------------------------------------------------ *)
(* Gossip: anti-entropy and statistics spread under message loss *)

(* Under iid loss even the end-to-end retries can run out; the tests
   below are about gossip convergence, not insert reliability, so issue
   the operation until it is acknowledged. *)
let insert_all_lossy ov keys =
  List.iteri
    (fun i k ->
      let origin = i mod Overlay.node_count ov in
      let item_id = Printf.sprintf "id%d" i in
      let rec go attempts =
        let r = Overlay.insert_sync ov ~origin ~key:k ~item_id ~payload:k () in
        if not r.Overlay.complete then
          if attempts >= 10 then Alcotest.failf "insert of %S never acknowledged" k
          else go (attempts + 1)
      in
      go 1)
    keys

let test_anti_entropy_converges_under_loss () =
  let rng = Rng.create 13 in
  let keys = List.sort_uniq compare (random_words rng 30) in
  let config = { Config.default with replication = 4 } in
  let ov = build_overlay ~n:24 ~drop:0.2 ~config ~keys () in
  insert_all_lossy ov keys;
  let key = List.hd keys in
  let rec update attempts =
    let r =
      Overlay.update_sync ov ~origin:1 ~key ~item_id:"id0" ~payload:"fresh" ~version:5 ()
    in
    if not r.Overlay.complete then
      if attempts >= 10 then Alcotest.fail "update never acknowledged" else update (attempts + 1)
  in
  update 1;
  (* Rumor spreading under 20% loss can miss replicas; bounded
     anti-entropy rounds must reconcile the rest. *)
  let max_rounds = 20 in
  let rec converge round =
    if Gossip.staleness ov ~key ~item_id:"id0" ~version:5 = 0.0 then round
    else if round >= max_rounds then
      Alcotest.failf "replicas still stale after %d anti-entropy rounds" max_rounds
    else begin
      Gossip.anti_entropy_round ov;
      Sim.run_all (Overlay.sim ov);
      converge (round + 1)
    end
  in
  let rounds = converge 0 in
  Alcotest.(check bool) "bounded rounds" true (rounds <= max_rounds)

let test_stats_gossip_spreads_under_loss () =
  let rng = Rng.create 14 in
  let n = 24 in
  let keys =
    List.init 40 (fun i -> Keys.attr_value_key "age" (Value.I (20 + i)))
    @ random_words rng 10
  in
  let ov = build_overlay ~n ~drop:0.2 ~keys () in
  insert_all_lossy ov keys;
  for _ = 1 to 6 do
    Gossip.stats_round ov ~sample:Stat_sample.of_node;
    Sim.run_all (Overlay.sim ov)
  done;
  (* Every peer's statistics cache must have heard about "age" counts
     from (nearly) the whole key space, not only its own region. *)
  let total peer =
    match
      List.assoc_opt "age"
        (Statcache.aggregate (Overlay.node ov peer).Node.stat_cache ~now:0.0 ~half_life_ms:0.0)
    with
    | Some a -> a.Statcache.a_count
    | None -> 0.0
  in
  List.iter
    (fun peer ->
      let c = total peer in
      if c < 28.0 then
        Alcotest.failf "peer %d aggregates only %.0f of 40 age triples after 6 lossy rounds"
          peer c)
    [ 0; 5; 11; 17; 23 ]

(* ------------------------------------------------------------------ *)
(* Facade: gossiped statistics drive the optimizer *)

let make_store ?(peers = 48) ?(overlay = Unistore.Pgrid) ?(seed = 42)
    ?(cache = Unistore.default_cache_config) () =
  let rng = Rng.create 7 in
  let ds = Publications.generate rng { Publications.default_params with typo_rate = 0.0 } in
  let config = { Unistore.default_config with peers; overlay; seed; cache } in
  let store = Unistore.create ~sample_keys:(Publications.sample_keys ds) config in
  ignore (Unistore.load store ds.Publications.tuples);
  Unistore.set_stats_of_triples store ds.Publications.triples;
  Unistore.settle store;
  (store, ds)

let plan_queries =
  [
    "SELECT ?n,?age WHERE { (?a,'name',?n) (?a,'age',?age) FILTER ?age > 30 }";
    "SELECT ?n,?t WHERE { (?a,'name',?n) (?a,'has_published',?t) (?p,'title',?t) }";
    "SELECT ?t WHERE { (?p,'title',?t) (?p,'year',?y) FILTER ?y >= 2000 }";
  ]

(* The acceptance bound: plans built from gossiped statistics may not
   cost more than 2x the oracle-planned query when both are re-costed
   under the oracle's statistics (bulk accesses of every step — the
   part of the plan the statistics actually steer). *)
let test_gossiped_stats_plan_cost_bound () =
  let store, ds = make_store () in
  for _ = 1 to 4 do
    Unistore.gossip_stats_round store
  done;
  let gossiped =
    match Unistore.gossiped_stats store ~origin:3 with
    | Some st -> st
    | None -> Alcotest.fail "no gossiped statistics after 4 rounds"
  in
  Alcotest.(check bool) "gossiped stats see the dataset" true
    (gossiped.Qstats.total_triples > 0);
  let oracle = Qstats.of_triples ds.Publications.triples in
  let env = Cost.env_of_dht (Unistore.dht store) ~replication:Unistore.default_config.replication in
  let recost plan =
    List.fold_left
      (fun acc step ->
        acc +. Cost.objective (Cost.estimate_access env oracle step.Physical.access))
      0.0 plan.Physical.steps
  in
  List.iter
    (fun src ->
      let q = Parser.parse_exn src in
      let from_gossip = recost (Optimizer.plan env gossiped ~qgrams:true q) in
      let from_oracle = recost (Optimizer.plan env oracle ~qgrams:true q) in
      if from_gossip > 2.0 *. from_oracle +. 1e-9 then
        Alcotest.failf "gossip-planned cost %.2f exceeds 2x oracle-planned %.2f for %s"
          from_gossip from_oracle src)
    plan_queries

let test_facade_queries_run_on_gossiped_stats () =
  let store, _ = make_store ~peers:32 () in
  for _ = 1 to 4 do
    Unistore.gossip_stats_round store
  done;
  (* Results must match between a gossip-planned run and the oracle
     reference: statistics change plans, never answers. *)
  List.iter
    (fun src ->
      match Unistore.query store ~origin:5 src with
      | Error e -> Alcotest.failf "query failed on gossiped stats: %s" e
      | Ok r ->
        Alcotest.(check bool) ("complete: " ^ src) true r.Unistore.Report.complete)
    plan_queries

(* ------------------------------------------------------------------ *)
(* Facade: result cache end-to-end *)

let test_result_cache_e2e_invalidation () =
  let store, _ = make_store ~peers:32 () in
  for _ = 1 to 4 do
    Unistore.gossip_stats_round store
  done;
  let m = Unistore.metrics store in
  let src = "SELECT ?a,?v WHERE { (?a,'age',?v) FILTER ?v > 90 }" in
  let run () =
    match Unistore.query store ~origin:3 src with
    | Ok r -> r
    | Error e -> Alcotest.failf "query failed: %s" e
  in
  Metrics.clear m;
  let r1 = run () in
  check Alcotest.int "cold run misses" 0 (Metrics.counter m "cache.result.hit");
  Alcotest.(check bool) "cold run populates" true (Metrics.counter m "cache.result.miss" > 0);
  let before = Unistore.messages_sent store in
  let r2 = run () in
  Alcotest.(check bool) "repeat run hits" true (Metrics.counter m "cache.result.hit" > 0);
  check Alcotest.int "repeat run is free" before (Unistore.messages_sent store);
  check Alcotest.int "same answer from cache" (List.length r1.Unistore.Report.rows)
    (List.length r2.Unistore.Report.rows);
  (* A write touching the attribute bumps its version: the cached entry
     must die and the new row must appear. *)
  Alcotest.(check bool) "write lands" true
    (Unistore.insert_triple store (Triple.make ~oid:"cachetest" ~attr:"age" (Value.I 99)));
  let r3 = run () in
  check Alcotest.int "fresh run sees the write"
    (List.length r1.Unistore.Report.rows + 1)
    (List.length r3.Unistore.Report.rows);
  Alcotest.(check bool) "staleness observed" true
    (Metrics.counter m "cache.result.stale_version" > 0
    || Metrics.counter m "cache.result.miss" > 1)

let test_result_caches_are_per_origin () =
  let store, _ = make_store ~peers:32 () in
  let m = Unistore.metrics store in
  let src = "SELECT ?n WHERE { (?a,'name',?n) }" in
  Metrics.clear m;
  ignore (Unistore.query store ~origin:3 src);
  let hits_before = Metrics.counter m "cache.result.hit" in
  ignore (Unistore.query store ~origin:9 src);
  check Alcotest.int "another origin cannot hit a foreign cache" hits_before
    (Metrics.counter m "cache.result.hit")

let test_no_cache_config_disables_everything () =
  let store, _ = make_store ~peers:32 ~cache:Unistore.no_cache () in
  let m = Unistore.metrics store in
  let src = "SELECT ?n WHERE { (?a,'name',?n) }" in
  Metrics.clear m;
  ignore (Unistore.query store ~origin:3 src);
  ignore (Unistore.query store ~origin:3 src);
  check Alcotest.int "no result hits" 0 (Metrics.counter m "cache.result.hit");
  check Alcotest.int "no shortcut hits" 0 (Metrics.counter m "cache.shortcut.hit")

(* ------------------------------------------------------------------ *)
(* Engine: mutant downgrade is observable *)

let test_mutant_downgrade_counted () =
  let store, _ = make_store ~peers:16 ~overlay:Unistore.Chord_trie () in
  let m = Unistore.metrics store in
  Metrics.clear m;
  (match
     Unistore.query store ~origin:2 ~strategy:Unistore.Mutant
       "SELECT ?n WHERE { (?a,'name',?n) }"
   with
  | Ok r -> Alcotest.(check bool) "query still completes" true r.Unistore.Report.complete
  | Error e -> Alcotest.failf "downgraded query failed: %s" e);
  check Alcotest.int "downgrade counted once" 1 (Metrics.counter m "engine.mutant_downgrade")

(* ------------------------------------------------------------------ *)
(* Tracelint: monotone reads *)

let obs origin version = { Tracelint.origin; key = "k"; item_id = "i"; version }

let test_monotone_reads_flags_regression () =
  let diags = Tracelint.monotone_reads [ obs 1 2; obs 1 1 ] in
  (match diags with
  | [ d ] ->
    check Alcotest.string "code" "stale-read" d.Unistore.Diagnostic.code;
    Alcotest.(check bool) "is error" true (Unistore.Diagnostic.is_error d)
  | l -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length l));
  check Alcotest.int "monotone sequence clean" 0
    (List.length (Tracelint.monotone_reads [ obs 1 1; obs 1 2; obs 1 2 ]));
  check Alcotest.int "origins tracked independently" 0
    (List.length (Tracelint.monotone_reads [ obs 1 5; obs 2 1 ]));
  check Alcotest.int "regression after recovery still flagged" 1
    (List.length (Tracelint.monotone_reads [ obs 1 1; obs 1 3; obs 1 2 ]))

let test_facade_read_log_lints_clean () =
  let store, ds = make_store ~peers:32 () in
  (* Exact-match patterns compile to point lookups — the operation the
     read observer taps. Use a value that exists in the dataset. *)
  let age =
    match
      List.find_map
        (fun tr ->
          match tr with
          | { Triple.attr = "age"; value = Value.I v; _ } -> Some v
          | _ -> None)
        ds.Publications.triples
    with
    | Some v -> v
    | None -> Alcotest.fail "dataset has no age triple"
  in
  let src = Printf.sprintf "SELECT ?a WHERE { (?a,'age',%d) }" age in
  Unistore.record_reads store;
  ignore (Unistore.query store ~origin:4 src);
  ignore (Unistore.query store ~origin:7 src);
  Unistore.stop_recording_reads store;
  Alcotest.(check bool) "reads were recorded" true (Unistore.read_log store <> []);
  check Alcotest.int "healthy deployment has no stale reads" 0
    (List.length (Unistore.lint_reads store))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "unistore_cache"
    [
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "peek does not refresh" `Quick test_lru_peek_no_refresh;
          Alcotest.test_case "capacity 0 disables" `Quick test_lru_capacity_zero_disabled;
          Alcotest.test_case "filter and shrink" `Quick test_lru_filter_and_shrink;
          Alcotest.test_case "deterministic traversal" `Quick test_lru_deterministic_order;
        ] );
      ( "shortcuts",
        [
          Alcotest.test_case "region containment" `Quick test_shortcuts_containment;
          Alcotest.test_case "invalidate peer" `Quick test_shortcuts_invalidate_peer;
          Alcotest.test_case "capacity 0 disables" `Quick test_shortcuts_capacity_zero_disabled;
        ] );
      ( "result_cache",
        [
          Alcotest.test_case "version and TTL invalidation" `Quick
            test_result_cache_version_and_ttl;
          Alcotest.test_case "mem is side-effect free" `Quick test_result_cache_mem_is_pure;
        ] );
      ( "qcache",
        [
          Alcotest.test_case "access + bind caching with versioning" `Quick
            test_qcache_access_and_bind;
          Alcotest.test_case "access keys do not collide" `Quick
            test_qcache_access_keys_do_not_collide;
        ] );
      ( "statcache",
        [
          Alcotest.test_case "merge newest-wins, replicas dedupe" `Quick
            test_statcache_merge_newest_wins;
          Alcotest.test_case "versions and decayed aggregation" `Quick
            test_statcache_versions_and_aggregate;
        ] );
      ( "overlay-shortcuts",
        [
          Alcotest.test_case "repeat lookups go direct" `Quick
            test_overlay_shortcut_second_lookup_is_direct;
          Alcotest.test_case "dead peers are invalidated" `Quick
            test_overlay_shortcut_dead_peer_invalidated;
        ] );
      ( "gossip",
        [
          Alcotest.test_case "anti-entropy converges under 20% loss" `Quick
            test_anti_entropy_converges_under_loss;
          Alcotest.test_case "statistics spread under 20% loss" `Quick
            test_stats_gossip_spreads_under_loss;
        ] );
      ( "gossiped-stats",
        [
          Alcotest.test_case "plan cost within 2x of oracle" `Quick
            test_gossiped_stats_plan_cost_bound;
          Alcotest.test_case "queries run on gossiped stats" `Quick
            test_facade_queries_run_on_gossiped_stats;
        ] );
      ( "result-cache-e2e",
        [
          Alcotest.test_case "hit, write, invalidate" `Quick test_result_cache_e2e_invalidation;
          Alcotest.test_case "caches are per-origin" `Quick test_result_caches_are_per_origin;
          Alcotest.test_case "no_cache disables everything" `Quick
            test_no_cache_config_disables_everything;
        ] );
      ( "engine",
        [ Alcotest.test_case "mutant downgrade counted" `Quick test_mutant_downgrade_counted ] );
      ( "tracelint",
        [
          Alcotest.test_case "monotone reads" `Quick test_monotone_reads_flags_regression;
          Alcotest.test_case "facade read log lints clean" `Quick
            test_facade_read_log_lints_clean;
        ] );
    ]
