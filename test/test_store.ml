(* Differential tests for the pluggable storage backends (Store_intf):
   every observable operation replayed against all three backends —
   hash (the reference), log (file-backed, crash-restart capable) and
   packed (dictionary-compressed) — plus an independent sorted-list
   model, asserting identical observable state after every batch. Also
   covers the log backend's torn-tail crash-restart machinery, the
   overlay-level crash/repair/anti-entropy recovery path, the packed
   backend's compression accounting, and same-seed determinism with
   the log backend enabled. *)

open Unistore_util
module Sim = Unistore_sim.Sim
module Latency = Unistore_sim.Latency
module Net = Unistore_sim.Net
module Trace = Unistore_sim.Trace
module Faults = Unistore_sim.Faults
module Metrics = Unistore_obs.Metrics
module Store = Unistore_pgrid.Store
module Node = Unistore_pgrid.Node
module Config = Unistore_pgrid.Config
module Overlay = Unistore_pgrid.Overlay
module Build = Unistore_pgrid.Build
module Gossip = Unistore_pgrid.Gossip
module Repair = Unistore_pgrid.Repair

let check = Alcotest.check

let item ?(version = 0) key item_id payload = { Store.key; item_id; payload; version }

(* ------------------------------------------------------------------ *)
(* Temp log directories: created under the dune sandbox cwd, removed
   at the end of each test so runtest stays hermetic. *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_log_dir name f =
  let dir = Filename.concat (Sys.getcwd ()) ("store-logs-" ^ name) in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Reference model: a plain item list kept in reverse first-insertion
   order (newest first), deliberately nothing like any backend. Scans
   derive from a stable sort by key: keys ascending, and — because the
   list is globally newest-first and the sort is stable — newest-first
   within each key, with LWW updates replacing in place (position
   preserved). This is the ordering contract of Store_intf. *)

module Model = struct
  type t = { mutable entries : Store.item list }

  let create () = { entries = [] }

  let put m (it : Store.item) =
    let found = ref false and stale = ref false in
    let entries =
      List.map
        (fun (e : Store.item) ->
          if String.equal e.Store.key it.Store.key && String.equal e.Store.item_id it.Store.item_id
          then begin
            found := true;
            if it.Store.version >= e.Store.version then it
            else begin
              stale := true;
              e
            end
          end
          else e)
        m.entries
    in
    if !stale then false
    else begin
      m.entries <- (if !found then entries else it :: entries);
      true
    end

  let remove m ~key ~item_id =
    m.entries <-
      List.filter
        (fun (e : Store.item) ->
          not (String.equal e.Store.key key && String.equal e.Store.item_id item_id))
        m.entries

  let to_list m =
    List.stable_sort
      (fun (a : Store.item) b -> String.compare a.Store.key b.Store.key)
      m.entries

  let size m = List.length m.entries
  let find m key = List.filter (fun (i : Store.item) -> String.equal i.Store.key key) (to_list m)

  let range m ~lo ~hi =
    if String.compare lo hi > 0 then []
    else
      List.filter
        (fun (i : Store.item) ->
          String.compare i.Store.key lo >= 0 && String.compare i.Store.key hi <= 0)
        (to_list m)

  let with_prefix m prefix =
    let plen = String.length prefix in
    List.filter
      (fun (i : Store.item) ->
        String.length i.Store.key >= plen && String.equal (String.sub i.Store.key 0 plen) prefix)
      (to_list m)

  let filter_partition m pred =
    let keep, out = List.partition pred (to_list m) in
    m.entries <- List.filter pred m.entries;
    ignore keep;
    out

  let digest m =
    List.map (fun (i : Store.item) -> (i.Store.key, i.Store.item_id, i.Store.version)) (to_list m)
end

(* ------------------------------------------------------------------ *)
(* Observation rendering: everything observable about a store, as one
   string, so a differential mismatch names the backend and shows both
   states. *)

let item_str (i : Store.item) =
  Printf.sprintf "%S/%s/%S/%d" i.Store.key i.Store.item_id i.Store.payload i.Store.version

let items_str l = String.concat ";" (List.map item_str l)

let digest_entry_cmp (k1, i1, v1) (k2, i2, v2) =
  match String.compare k1 k2 with
  | 0 -> ( match String.compare i1 i2 with 0 -> Int.compare v1 v2 | c -> c)
  | c -> c

let digest_str d =
  List.sort digest_entry_cmp d
  |> List.map (fun (k, i, v) -> Printf.sprintf "%S/%s/%d" k i v)
  |> String.concat ";"

(* The probe set drives point/range/prefix observations; traces draw
   keys from the same pool so probes actually hit. *)
let observe ~to_list ~size ~find ~range ~with_prefix ~digest probes =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "size=%d\n" size);
  Buffer.add_string b ("all=" ^ items_str to_list ^ "\n");
  List.iter (fun k -> Buffer.add_string b (Printf.sprintf "find(%s)=%s\n" k (items_str (find k)))) probes;
  (match probes with
  | lo :: _ ->
    let hi = List.fold_left (fun a k -> if String.compare k a > 0 then k else a) lo probes in
    let lo = List.fold_left (fun a k -> if String.compare k a < 0 then k else a) lo probes in
    Buffer.add_string b (Printf.sprintf "range(%s,%s)=%s\n" lo hi (items_str (range ~lo ~hi)));
    Buffer.add_string b (Printf.sprintf "range1(%s)=%s\n" lo (items_str (range ~lo:lo ~hi:lo)));
    Buffer.add_string b
      (Printf.sprintf "range_inv=%s\n" (items_str (if String.equal lo hi then [] else range ~lo:hi ~hi:lo)))
  | [] -> ());
  List.iter
    (fun k ->
      let p = String.sub k 0 (min 2 (String.length k)) in
      Buffer.add_string b (Printf.sprintf "prefix(%s)=%s\n" p (items_str (with_prefix p))))
    probes;
  Buffer.add_string b ("digest=" ^ digest_str digest ^ "\n");
  Buffer.contents b

let observe_store s probes =
  observe ~to_list:(Store.to_list s) ~size:(Store.size s) ~find:(Store.find s)
    ~range:(fun ~lo ~hi -> Store.range s ~lo ~hi)
    ~with_prefix:(Store.with_prefix s) ~digest:(Store.digest s) probes

let observe_model m probes =
  observe ~to_list:(Model.to_list m) ~size:(Model.size m) ~find:(Model.find m)
    ~range:(fun ~lo ~hi -> Model.range m ~lo ~hi)
    ~with_prefix:(Model.with_prefix m) ~digest:(Model.digest m) probes

(* ------------------------------------------------------------------ *)
(* Differential harness                                                *)

let make_backends dir name =
  [
    ("hash", Store.create ());
    ("log", Store.create ~backend:(Store.Log { dir }) ~name ());
    ("packed", Store.create ~backend:Store.Packed ());
  ]

let check_against_model ~ctx backends model probes =
  let want = observe_model model probes in
  List.iter
    (fun (label, s) ->
      check Alcotest.string (Printf.sprintf "%s: %s matches model" ctx label) want
        (observe_store s probes))
    backends

(* Apply one operation everywhere; put results and partition spoils
   must agree backend-by-backend with the model. *)
type op =
  | Put of Store.item
  | Remove of { key : string; item_id : string }
  | Partition of string  (* keep items with key >= boundary (split handover) *)

let apply_op ~ctx backends model op =
  match op with
  | Put it ->
    let want = Model.put model it in
    List.iter
      (fun (label, s) ->
        check Alcotest.bool
          (Printf.sprintf "%s: %s put %s agrees" ctx label (item_str it))
          want (Store.put s it))
      backends
  | Remove { key; item_id } ->
    Model.remove model ~key ~item_id;
    List.iter (fun (_, s) -> Store.remove s ~key ~item_id) backends
  | Partition boundary ->
    let pred (i : Store.item) = String.compare i.Store.key boundary >= 0 in
    (* Spoils are compared sorted: the contract leaves their order
       unspecified (all real consumers are order-insensitive). *)
    let entry_cmp (a : Store.item) b =
      digest_entry_cmp (a.Store.key, a.Store.item_id, a.Store.version)
        (b.Store.key, b.Store.item_id, b.Store.version)
    in
    let want = items_str (List.sort entry_cmp (Model.filter_partition model pred)) in
    List.iter
      (fun (label, s) ->
        check Alcotest.string
          (Printf.sprintf "%s: %s partition spoils agree" ctx label)
          want
          (items_str (List.sort entry_cmp (Store.filter_partition s pred))))
      backends

(* Seeded random op traces over a small key/id pool (collisions are the
   point: duplicate inserts, LWW races, remove-then-reinsert). *)
let gen_ops rng n pool ids =
  List.init n (fun _ ->
      let key = pool.(Rng.int rng (Array.length pool)) in
      let id = ids.(Rng.int rng (Array.length ids)) in
      let r = Rng.int rng 100 in
      if r < 72 then
        Put
          {
            Store.key;
            item_id = id;
            payload = Printf.sprintf "p%d-%s" (Rng.int rng 1000) id;
            version = Rng.int rng 4;
          }
      else if r < 94 then Remove { key; item_id = id }
      else Partition pool.(Rng.int rng (Array.length pool)))

let run_random_trace ~seed ~batches ~batch_len () =
  with_log_dir (Printf.sprintf "trace%d" seed) (fun dir ->
      let rng = Rng.create seed in
      let pool =
        Array.init 10 (fun i -> Printf.sprintf "%c%c#k%d" (Char.chr (97 + (i mod 3))) (Char.chr (97 + i)) i)
      in
      let ids = Array.init 6 (fun i -> Printf.sprintf "id%d" i) in
      let probes = Array.to_list pool in
      let backends = make_backends dir (Printf.sprintf "trace%d" seed) in
      let model = Model.create () in
      for b = 1 to batches do
        let ctx = Printf.sprintf "seed%d batch%d" seed b in
        List.iter (apply_op ~ctx backends model) (gen_ops rng batch_len pool ids);
        check_against_model ~ctx backends model probes
      done)

(* ------------------------------------------------------------------ *)
(* Named differential edge cases (each runs on all three backends)     *)

let with_backends name f =
  with_log_dir name (fun dir -> List.iter (fun (label, s) -> f label s) (make_backends dir name))

let test_empty_store () =
  with_backends "empty" (fun label s ->
      check Alcotest.int (label ^ ": size") 0 (Store.size s);
      check Alcotest.string (label ^ ": to_list") "" (items_str (Store.to_list s));
      check Alcotest.string (label ^ ": find") "" (items_str (Store.find s "nope"));
      check Alcotest.string (label ^ ": range") "" (items_str (Store.range s ~lo:"a" ~hi:"z"));
      check Alcotest.string (label ^ ": prefix") "" (items_str (Store.with_prefix s ""));
      check Alcotest.string (label ^ ": digest") "" (digest_str (Store.digest s));
      check Alcotest.int (label ^ ": stats.triples") 0 (Store.stats s).Store.triples)

let test_duplicate_insert () =
  with_backends "dup" (fun label s ->
      check Alcotest.bool (label ^ ": first") true (Store.put s (item "k" "a" "p"));
      (* Same (key, id, version): idempotent retry — accepted, no growth. *)
      check Alcotest.bool (label ^ ": retry accepted") true (Store.put s (item "k" "a" "p"));
      check Alcotest.int (label ^ ": size") 1 (Store.size s);
      check Alcotest.string (label ^ ": state") {|"k"/a/"p"/0|} (items_str (Store.to_list s)))

let test_stale_version_rejected () =
  with_backends "stale" (fun label s ->
      ignore (Store.put s (item ~version:3 "k" "a" "new"));
      check Alcotest.bool (label ^ ": stale rejected") false (Store.put s (item ~version:2 "k" "a" "old"));
      check Alcotest.string (label ^ ": payload kept") {|"k"/a/"new"/3|} (items_str (Store.find s "k")))

let test_lww_update_keeps_position () =
  with_backends "lww" (fun label s ->
      ignore (Store.put s (item "k" "a" "pa"));
      ignore (Store.put s (item "k" "b" "pb"));
      ignore (Store.put s (item "k" "c" "pc"));
      (* Update the middle item; newest-first-by-first-insertion order
         must be preserved: c, b, a. *)
      check Alcotest.bool (label ^ ": update ok") true (Store.put s (item ~version:5 "k" "b" "pb2"));
      check Alcotest.string (label ^ ": order kept")
        {|"k"/c/"pc"/0;"k"/b/"pb2"/5;"k"/a/"pa"/0|}
        (items_str (Store.find s "k")))

let test_newest_first_across_scans () =
  with_backends "order" (fun label s ->
      ignore (Store.put s (item "b#k" "1" "x"));
      ignore (Store.put s (item "a#k" "2" "y"));
      ignore (Store.put s (item "b#k" "3" "z"));
      let want = {|"a#k"/2/"y"/0;"b#k"/3/"z"/0;"b#k"/1/"x"/0|} in
      check Alcotest.string (label ^ ": to_list") want (items_str (Store.to_list s));
      check Alcotest.string (label ^ ": range") want (items_str (Store.range s ~lo:"a" ~hi:"c"));
      let via_iter = ref [] in
      Store.iter s (fun i -> via_iter := i :: !via_iter);
      check Alcotest.string (label ^ ": iter") want (items_str (List.rev !via_iter)))

let test_delete_then_prefix_scan () =
  with_backends "delprefix" (fun label s ->
      ignore (Store.put s (item "aa#1" "x" "p1"));
      ignore (Store.put s (item "aa#2" "y" "p2"));
      ignore (Store.put s (item "aa#2" "z" "p3"));
      ignore (Store.put s (item "ab#1" "w" "p4"));
      (* Delete one of two items under a key, then the whole aa#1 key. *)
      Store.remove s ~key:"aa#2" ~item_id:"y";
      Store.remove s ~key:"aa#1" ~item_id:"x";
      check Alcotest.string (label ^ ": prefix aa") {|"aa#2"/z/"p3"/0|}
        (items_str (Store.with_prefix s "aa"));
      check Alcotest.string (label ^ ": prefix a") {|"aa#2"/z/"p3"/0;"ab#1"/w/"p4"/0|}
        (items_str (Store.with_prefix s "a"));
      check Alcotest.string (label ^ ": emptied key gone") "" (items_str (Store.find s "aa#1")))

let test_remove_nonexistent () =
  with_backends "rmnone" (fun label s ->
      ignore (Store.put s (item "k" "a" "p"));
      Store.remove s ~key:"k" ~item_id:"other";
      Store.remove s ~key:"unknown" ~item_id:"a";
      check Alcotest.int (label ^ ": size intact") 1 (Store.size s);
      check Alcotest.string (label ^ ": state intact") {|"k"/a/"p"/0|} (items_str (Store.to_list s)))

let test_range_edges () =
  with_backends "range" (fun label s ->
      ignore (Store.put s (item "b" "1" "x"));
      ignore (Store.put s (item "d" "2" "y"));
      ignore (Store.put s (item "f" "3" "z"));
      check Alcotest.string (label ^ ": inverted empty") "" (items_str (Store.range s ~lo:"f" ~hi:"b"));
      check Alcotest.string (label ^ ": point") {|"d"/2/"y"/0|} (items_str (Store.range s ~lo:"d" ~hi:"d"));
      check Alcotest.string (label ^ ": inclusive both ends")
        {|"b"/1/"x"/0;"d"/2/"y"/0;"f"/3/"z"/0|}
        (items_str (Store.range s ~lo:"b" ~hi:"f"));
      check Alcotest.string (label ^ ": between keys") {|"d"/2/"y"/0|}
        (items_str (Store.range s ~lo:"c" ~hi:"e")))

let test_prefix_contiguity () =
  with_backends "prefix" (fun label s ->
      ignore (Store.put s (item "ab#1" "1" "x"));
      ignore (Store.put s (item "ac#1" "2" "y"));
      ignore (Store.put s (item "ab#2" "3" "z"));
      ignore (Store.put s (item "b#1" "4" "w"));
      check Alcotest.string (label ^ ": ab block")
        {|"ab#1"/1/"x"/0;"ab#2"/3/"z"/0|}
        (items_str (Store.with_prefix s "ab"));
      check Alcotest.string (label ^ ": empty prefix = all")
        {|"ab#1"/1/"x"/0;"ab#2"/3/"z"/0;"ac#1"/2/"y"/0;"b#1"/4/"w"/0|}
        (items_str (Store.with_prefix s "")))

let test_filter_partition_handover () =
  with_backends "partition" (fun label s ->
      for i = 0 to 9 do
        ignore (Store.put s (item (Printf.sprintf "k%d" i) (Printf.sprintf "id%d" i) "p"))
      done;
      let removed = Store.filter_partition s (fun i -> String.compare i.Store.key "k5" < 0) in
      check Alcotest.int (label ^ ": removed count") 5 (List.length removed);
      check Alcotest.int (label ^ ": kept count") 5 (Store.size s);
      List.iter
        (fun (i : Store.item) ->
          check Alcotest.bool (label ^ ": spoils >= k5") false (String.compare i.Store.key "k5" < 0))
        removed;
      List.iter
        (fun (i : Store.item) ->
          check Alcotest.bool (label ^ ": kept < k5") true (String.compare i.Store.key "k5" < 0))
        (Store.to_list s))

let test_clear_then_reuse () =
  with_backends "clear" (fun label s ->
      ignore (Store.put s (item "k1" "a" "p1"));
      ignore (Store.put s (item "k2" "b" "p2"));
      Store.clear s;
      check Alcotest.int (label ^ ": empty") 0 (Store.size s);
      ignore (Store.put s (item "k1" "a" "p3"));
      check Alcotest.string (label ^ ": reusable") {|"k1"/a/"p3"/0|} (items_str (Store.to_list s));
      (* A cleared-then-reused log must also replay to just the new state. *)
      check Alcotest.int (label ^ ": crash-restart sees only new state")
        (match Store.kind s with Store.Log _ -> 1 | _ -> 0)
        (Store.crash_restart s))

(* ------------------------------------------------------------------ *)
(* Log backend: crash/restart and torn tails                           *)

let test_log_clean_restart () =
  with_log_dir "clean-restart" (fun dir ->
      let s = Store.create ~backend:(Store.Log { dir }) ~name:"peer" () in
      let rng = Rng.create 11 in
      for i = 0 to 199 do
        ignore (Store.put s (item ~version:(Rng.int rng 3) (Printf.sprintf "k%d" (Rng.int rng 40)) (Printf.sprintf "id%d" i) "payload"))
      done;
      Store.remove s ~key:"k1" ~item_id:"id7";
      let before = observe_store s [ "k1"; "k2"; "k3" ] in
      let n = Store.size s in
      check Alcotest.int "all items recovered" n (Store.crash_restart s);
      check Alcotest.string "state identical after replay" before (observe_store s [ "k1"; "k2"; "k3" ]);
      (* The reopened store keeps accepting writes. *)
      check Alcotest.bool "writable after restart" true (Store.put s (item "fresh" "id" "p")))

let test_log_torn_tail () =
  with_log_dir "torn" (fun dir ->
      (* Drive a log store and a parallel in-memory reference; remember
         the log length after every op. A torn tail cut at op k must
         replay to exactly the reference state after ops 0..k. *)
      let ops =
        let rng = Rng.create 23 in
        List.init 120 (fun i ->
            item ~version:(Rng.int rng 3)
              (Printf.sprintf "k%d" (Rng.int rng 12))
              (Printf.sprintf "id%d" (Rng.int rng 30))
              (Printf.sprintf "pay-%d" i))
      in
      let s = Store.create ~backend:(Store.Log { dir }) ~name:"torn" () in
      let marks = ref [] in
      List.iter
        (fun it ->
          ignore (Store.put s it);
          marks := Store.log_bytes s :: !marks)
        ops;
      let marks = Array.of_list (List.rev !marks) in
      let total = marks.(Array.length marks - 1) in
      let reference upto =
        let r = Store.create () in
        List.iteri (fun i it -> if i <= upto then ignore (Store.put r it)) ops;
        observe_store r [ "k0"; "k5"; "k11" ]
      in
      (* keep_frac resolving to an exact record boundary: ops 0..79
         survive, the rest are the torn tail. *)
      let cut = 79 in
      let frac = (float_of_int marks.(cut) +. 0.5) /. float_of_int total in
      let recovered = Store.crash_restart ~keep_frac:frac s in
      check Alcotest.string "boundary cut replays the surviving prefix" (reference cut)
        (observe_store s [ "k0"; "k5"; "k11" ]);
      check Alcotest.bool "recovered <= written" true (recovered <= List.length ops);
      (* Now cut mid-record: a few bytes into op 41's record. The half
         record must be discarded, leaving exactly ops 0..40. *)
      let s2 = Store.create ~backend:(Store.Log { dir }) ~name:"torn2" () in
      List.iter (fun it -> ignore (Store.put s2 it)) ops;
      let total2 = Store.log_bytes s2 in
      let frac2 = (float_of_int marks.(40) +. 3.5) /. float_of_int total2 in
      ignore (Store.crash_restart ~keep_frac:frac2 s2);
      check Alcotest.string "mid-record cut discards the half record" (reference 40)
        (observe_store s2 [ "k0"; "k5"; "k11" ]);
      (* After the truncating replay the log is rewritten to its valid
         prefix: a second, clean restart recovers the same state. *)
      let after = observe_store s2 [ "k0"; "k5"; "k11" ] in
      ignore (Store.crash_restart s2);
      check Alcotest.string "replay is idempotent" after (observe_store s2 [ "k0"; "k5"; "k11" ]))

let test_log_total_loss () =
  with_log_dir "total-loss" (fun dir ->
      let s = Store.create ~backend:(Store.Log { dir }) ~name:"gone" () in
      for i = 0 to 20 do
        ignore (Store.put s (item (Printf.sprintf "k%d" i) "id" "p"))
      done;
      check Alcotest.int "whole log torn -> empty store" 0 (Store.crash_restart ~keep_frac:0.0 s);
      check Alcotest.int "size 0" 0 (Store.size s);
      check Alcotest.bool "still writable" true (Store.put s (item "k" "id" "p")))

(* ------------------------------------------------------------------ *)
(* Packed backend: compression accounting                              *)

(* 100k triples with Zipf-repeated index keys (duplicate (attr,value)
   pairs), unique ids and payloads — the shape the packed layout is
   built for. Same items into hash and packed; packed must account
   strictly fewer bytes. *)
let test_packed_compression_100k () =
  let n = 100_000 in
  let rng = Rng.create 7 in
  let z = Zipf.create ~n:5_000 ~s:1.1 in
  let hash = Store.create () in
  let packed = Store.create ~backend:Store.Packed () in
  for i = 0 to n - 1 do
    let rank = Zipf.sample z rng in
    let it =
      item
        (Printf.sprintf "pubs#value#%05d" rank)
        (Printf.sprintf "oid%06d" i)
        (Printf.sprintf "{\"oid\":%d,\"attr\":\"value\",\"rank\":%d}" i rank)
    in
    ignore (Store.put hash it);
    ignore (Store.put packed it)
  done;
  let sh = Store.stats hash and sp = Store.stats packed in
  check Alcotest.int "hash holds all triples" n sh.Store.triples;
  check Alcotest.int "packed holds all triples" n sp.Store.triples;
  Printf.printf "bytes/triple: hash=%.1f packed=%.1f\n%!"
    (float_of_int sh.Store.bytes /. float_of_int n)
    (float_of_int sp.Store.bytes /. float_of_int n);
  check Alcotest.bool
    (Printf.sprintf "packed (%d) strictly below hash (%d)" sp.Store.bytes sh.Store.bytes)
    true
    (sp.Store.bytes < sh.Store.bytes);
  (* And the stores still agree observably at this scale. *)
  check Alcotest.int "same size" (Store.size hash) (Store.size packed);
  let probe = "pubs#value#00001" in
  check Alcotest.string "hot key agrees" (items_str (Store.find hash probe))
    (items_str (Store.find packed probe))

(* The store.bytes gauge must be the same number Store.stats reports —
   the compression tests and BENCH_store.json then share one counter. *)
let test_store_bytes_gauge () =
  let sim = Sim.create () in
  let rng = Rng.create 5 in
  let n = 8 in
  let latency = Latency.create (Latency.Constant 1.0) ~n ~rng in
  let config = { Config.default with Config.store_backend = Unistore_pgrid.Store_intf.Packed } in
  let ov = Build.oracle sim ~latency ~rng ~config ~n ~sample_keys:[] ~balanced:false () in
  let m = Metrics.create () in
  Overlay.set_metrics ov (Some m);
  for i = 0 to 49 do
    let r =
      Overlay.insert_sync ov ~origin:(i mod n) ~key:(Printf.sprintf "g#%02d" (i mod 13))
        ~item_id:(Printf.sprintf "id%d" i) ~payload:"payload" ()
    in
    check Alcotest.bool "insert ok" true r.Overlay.complete
  done;
  Overlay.refresh_store_gauges ov;
  let expected_bytes = ref 0 and expected_items = ref 0 in
  for id = 0 to n - 1 do
    let node = Overlay.node ov id in
    check Alcotest.string "node runs the packed backend" "packed"
      (Store.backend_label (Store.kind node.Node.store));
    let s = Store.stats node.Node.store in
    expected_bytes := !expected_bytes + s.Store.bytes;
    expected_items := !expected_items + s.Store.triples
  done;
  check Alcotest.bool "items were stored" true (!expected_items > 0);
  check (Alcotest.option (Alcotest.float 0.5)) "store.bytes = sum of Store.stats"
    (Some (float_of_int !expected_bytes))
    (Metrics.gauge m "store.bytes");
  check (Alcotest.option (Alcotest.float 0.5)) "store.items = sum of Store.stats"
    (Some (float_of_int !expected_items))
    (Metrics.gauge m "store.items")

(* ------------------------------------------------------------------ *)
(* Overlay crash-restart: torn log tail, then repair + anti-entropy    *)

let test_overlay_crash_restart_recall () =
  with_log_dir "overlay-crash" (fun dir ->
      let sim = Sim.create () in
      let rng = Rng.create 42 in
      let n = 16 in
      let latency = Latency.create (Latency.Constant 1.0) ~n ~rng in
      let config =
        {
          Config.default with
          Config.replication = 3;
          store_backend = Unistore_pgrid.Store_intf.Log { dir };
        }
      in
      let keys = List.init 40 (fun i -> Printf.sprintf "key#%02d" i) in
      let ov = Build.oracle sim ~latency ~rng ~config ~n ~sample_keys:keys ~balanced:false () in
      let m = Metrics.create () in
      Overlay.set_metrics ov (Some m);
      let insert i k =
        let r =
          Overlay.insert_sync ov ~origin:0 ~key:k ~item_id:(Printf.sprintf "id%d" i) ~payload:k ()
        in
        check Alcotest.bool (Printf.sprintf "insert %s ok" k) true r.Overlay.complete
      in
      let phase1, phase2 =
        let rec split i = function
          | [] -> ([], [])
          | k :: rest ->
            let a, b = split (i + 1) rest in
            if i < 30 then (k :: a, b) else (a, k :: b)
        in
        split 0 keys
      in
      List.iteri insert phase1;
      (* Victim: a peer (not the origin) responsible for the first key,
         so its log is non-empty and its loss matters. *)
      let victim =
        match List.filter (fun (nd : Node.t) -> nd.Node.id <> 0) (Overlay.responsible ov (List.hd keys)) with
        | nd :: _ -> nd
        | [] -> Alcotest.fail "no responsible peer other than the origin"
      in
      let held_before = Store.size victim.Node.store in
      check Alcotest.bool "victim held items" true (held_before > 0);
      (* Crash mid-bulk-insert with a torn tail: half the log survives. *)
      let recovered = Overlay.crash ov ~keep_frac:0.5 victim.Node.id in
      check Alcotest.bool "torn tail lost items" true (recovered < held_before);
      check Alcotest.int "fault.crash counted" 1 (Metrics.counter m "fault.crash");
      (* The bulk insert continues while the victim is down. *)
      List.iteri (fun i k -> insert (1000 + i) k) phase2;
      (* Revive; repair re-adopts the peer, anti-entropy refills it. *)
      Overlay.revive ov victim.Node.id;
      ignore (Repair.round ov);
      Sim.run_all sim;
      for _ = 1 to 8 do
        Gossip.anti_entropy_round ov;
        Sim.run_all sim
      done;
      check Alcotest.bool "fault.repair.rounds visible" true
        (Metrics.counter m "fault.repair.rounds" >= 1);
      (* Recall over every key must be back to 1.0. *)
      let hits =
        List.fold_left
          (fun acc k ->
            let r = Overlay.lookup_sync ov ~origin:0 ~key:k in
            if r.Overlay.complete && r.Overlay.items <> [] then acc + 1 else acc)
          0 keys
      in
      check Alcotest.int "recall 1.0 after repair + anti-entropy" (List.length keys) hits;
      (* The revived store itself converged back past its torn state. *)
      check Alcotest.bool "victim refilled" true (Store.size victim.Node.store > recovered))

(* ------------------------------------------------------------------ *)
(* Determinism: same seed, log backend enabled, byte-identical trace   *)

let render_trace tr =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%.6f %d>%d %s %dB c%d %s\n" e.Trace.time e.Trace.src e.Trace.dst
           e.Trace.kind e.Trace.bytes e.Trace.corr
           (Format.asprintf "%a" Trace.pp_outcome e.Trace.outcome)))
    (Trace.events tr);
  Buffer.contents buf

let run_log_scenario dir =
  let n = 300 in
  let sim = Sim.create () in
  let rng = Rng.create 4242 in
  let latency = Latency.create Latency.Lan ~n ~rng in
  let config = { Config.default with Config.store_backend = Unistore_pgrid.Store_intf.Log { dir } } in
  let ov = Build.oracle sim ~latency ~rng ~config ~n ~sample_keys:[] ~balanced:true () in
  let tr = Trace.create () in
  Net.set_trace (Overlay.net ov) (Some tr);
  let spec =
    Faults.spec ~seed:99 ~duration_ms:3_000.0
      ~churn:(Faults.churn_spec ~interval_ms:500.0 ~down_ms:1_000.0 ~rate:0.02 ())
      ()
  in
  let h = Faults.inject (Overlay.net ov) spec in
  let wrng = Rng.create 777 in
  for i = 0 to 79 do
    let key = Printf.sprintf "det#%03d" (Rng.int wrng 64) in
    Overlay.insert ov ~origin:(Rng.int wrng n) ~key ~item_id:(string_of_int i) ~payload:"p"
      ~k:(fun _ -> ())
      ();
    Overlay.lookup ov ~origin:(Rng.int wrng n) ~key ~k:(fun _ -> ())
  done;
  Sim.run_all sim;
  (render_trace tr, Faults.render_log h)

let test_log_backend_determinism () =
  with_log_dir "replay-a" (fun dir_a ->
      with_log_dir "replay-b" (fun dir_b ->
          let trace1, faults1 = run_log_scenario dir_a in
          let trace2, faults2 = run_log_scenario dir_b in
          check Alcotest.bool "trace non-trivial" true (String.length trace1 > 500);
          check Alcotest.string "byte-identical fault log" faults1 faults2;
          check Alcotest.int "same trace length" (String.length trace1) (String.length trace2);
          check Alcotest.bool "byte-identical trace" true (String.equal trace1 trace2)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "unistore_store"
    [
      ( "differential",
        [
          Alcotest.test_case "empty store" `Quick test_empty_store;
          Alcotest.test_case "duplicate insert is an idempotent retry" `Quick test_duplicate_insert;
          Alcotest.test_case "stale version rejected" `Quick test_stale_version_rejected;
          Alcotest.test_case "LWW update keeps scan position" `Quick test_lww_update_keeps_position;
          Alcotest.test_case "ordering contract across scans" `Quick test_newest_first_across_scans;
          Alcotest.test_case "delete then prefix scan" `Quick test_delete_then_prefix_scan;
          Alcotest.test_case "remove nonexistent is a no-op" `Quick test_remove_nonexistent;
          Alcotest.test_case "range edges" `Quick test_range_edges;
          Alcotest.test_case "prefix contiguity" `Quick test_prefix_contiguity;
          Alcotest.test_case "filter_partition handover" `Quick test_filter_partition_handover;
          Alcotest.test_case "clear then reuse" `Quick test_clear_then_reuse;
          Alcotest.test_case "random trace seed 1" `Quick (fun () ->
              run_random_trace ~seed:1 ~batches:12 ~batch_len:40 ());
          Alcotest.test_case "random trace seed 2" `Quick (fun () ->
              run_random_trace ~seed:2 ~batches:12 ~batch_len:40 ());
          Alcotest.test_case "random trace seed 3" `Quick (fun () ->
              run_random_trace ~seed:3 ~batches:8 ~batch_len:120 ());
        ] );
      ( "log",
        [
          Alcotest.test_case "clean crash-restart replays everything" `Quick test_log_clean_restart;
          Alcotest.test_case "torn tail at and inside record boundaries" `Quick test_log_torn_tail;
          Alcotest.test_case "total log loss" `Quick test_log_total_loss;
        ] );
      ( "packed",
        [
          Alcotest.test_case "100k-triple Zipf compression" `Slow test_packed_compression_100k;
          Alcotest.test_case "store.bytes gauge wiring" `Quick test_store_bytes_gauge;
        ] );
      ( "crash-restart",
        [
          Alcotest.test_case "torn log + repair + anti-entropy recall 1.0" `Quick
            test_overlay_crash_restart_recall;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, log backend, identical trace" `Quick
            test_log_backend_determinism;
        ] );
    ]
