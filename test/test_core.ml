(* End-to-end tests of the Unistore facade: VQL over a live simulated
   deployment, checked against a local reference evaluator. *)

module Value = Unistore_triple.Value
module Triple = Unistore_triple.Triple
module Ast = Unistore_vql.Ast
module Parser = Unistore_vql.Parser
module Algebra = Unistore_vql.Algebra
module Binding = Unistore_qproc.Binding
module Ranking = Unistore_qproc.Ranking
module Engine = Unistore_qproc.Engine
module Physical = Unistore_qproc.Physical
module Publications = Unistore_workload.Publications
module Demo_data = Unistore_workload.Demo_data
module Latency = Unistore_sim.Latency

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Reference evaluator: brute force over the in-memory triples          *)

let ref_eval (triples : Triple.t list) (q : Ast.query) : Binding.t list =
  let eval_pattern p = List.filter_map (Binding.match_triple p) triples in
  let eval_branch (patterns, filters) =
    let joined =
      List.fold_left
        (fun rows p ->
          let candidates = eval_pattern p in
          List.concat_map (fun b -> List.filter_map (Binding.compatible b) candidates) rows)
        [ Binding.empty ] patterns
    in
    List.fold_left
      (fun rows f -> List.filter (fun b -> Algebra.eval_pred (Binding.lookup b) f) rows)
      joined filters
  in
  let filtered =
    List.concat_map eval_branch ((q.Ast.patterns, q.Ast.filters) :: q.Ast.union_branches)
  in
  let ordered =
    match q.Ast.order with
    | Some (Ast.OrderBy items) -> Ranking.order_by items filtered
    | Some (Ast.Skyline items) -> Ranking.skyline items filtered
    | None -> filtered
  in
  let projected =
    match q.Ast.projection with
    | Some vs -> List.map (Binding.project vs) ordered
    | None -> ordered
  in
  let distinct =
    if q.Ast.distinct then begin
      let seen = Hashtbl.create 32 in
      List.filter
        (fun b ->
          let fp = Binding.fingerprint b in
          if Hashtbl.mem seen fp then false
          else begin
            Hashtbl.replace seen fp ();
            true
          end)
        projected
    end
    else projected
  in
  match q.Ast.limit with
  | Some n -> List.filteri (fun i _ -> i < n) distinct
  | None -> distinct

let fingerprints rows = List.map Binding.fingerprint rows |> List.sort compare

let check_against_oracle name store dataset ?strategy ?expand_mappings src =
  let q = Parser.parse_exn src in
  let expected = ref_eval dataset.Publications.triples q in
  match Unistore.query store ?strategy ?expand_mappings src with
  | Error e -> Alcotest.failf "%s: query failed: %s" name e
  | Ok report ->
    Alcotest.(check bool) (name ^ ": complete") true report.Engine.complete;
    check
      Alcotest.(list string)
      (name ^ ": rows match reference")
      (fingerprints expected)
      (fingerprints report.Engine.rows);
    report

(* ------------------------------------------------------------------ *)
(* Shared deployment                                                   *)

let make_store ?(peers = 32) ?(overlay = Unistore.Pgrid) ?(seed = 42) ?(typo_rate = 0.15)
    ?(rank = Unistore.default_rank_config) () =
  let rng = Unistore_util.Rng.create 7 in
  let ds = Publications.generate rng { Publications.default_params with typo_rate } in
  let config = { Unistore.default_config with peers; overlay; seed; rank } in
  let store = Unistore.create ~sample_keys:(Publications.sample_keys ds) config in
  let stored = Unistore.load store ds.Publications.tuples in
  Alcotest.(check bool) "all triples stored" true (stored = List.length ds.Publications.triples);
  Unistore.set_stats_of_triples store ds.Publications.triples;
  Unistore.settle store;
  (store, ds)

let paper_query =
  "SELECT ?name,?age,?cnt \
   WHERE {(?a,'name',?name) (?a,'age',?age) \
   (?a,'num_of_pubs',?cnt) \
   (?a,'has_published',?title) (?p,'title',?title) \
   (?p,'published_in',?conf) (?c,'confname',?conf) \
   (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3 \
   } \
   ORDER BY SKYLINE OF ?age MIN, ?cnt MAX"

(* ------------------------------------------------------------------ *)

let test_simple_selection () =
  let store, ds = make_store () in
  ignore (check_against_oracle "eq-selection" store ds "SELECT ?a WHERE { (?a,'series',?s) FILTER ?s = 'ICDE' }")

let test_range_query () =
  let store, ds = make_store () in
  ignore
    (check_against_oracle "range" store ds
       "SELECT ?a, ?v WHERE { (?a,'age',?v) FILTER ?v >= 30 AND ?v < 50 }")

let test_join_query () =
  let store, ds = make_store () in
  ignore
    (check_against_oracle "join" store ds
       "SELECT ?name, ?title WHERE { (?a,'name',?name) (?a,'has_published',?title) (?p,'title',?title) \
        (?p,'year',?y) FILTER ?y >= 2003 }")

let test_var_attr_query () =
  let store, ds = make_store () in
  ignore
    (check_against_oracle "var-attr" store ds
       "SELECT ?a, ?attr WHERE { (?a,?attr,'databases') }")

let test_order_limit_distinct () =
  let store, ds = make_store () in
  let r =
    check_against_oracle "order+limit" store ds
      "SELECT ?name, ?age WHERE { (?a,'name',?name) (?a,'age',?age) } ORDER BY ?age DESC LIMIT 5"
  in
  check Alcotest.int "5 rows" 5 (List.length r.Engine.rows);
  ignore
    (check_against_oracle "distinct" store ds
       "SELECT DISTINCT ?s WHERE { (?c,'series',?s) }")

let test_paper_skyline_query () =
  let store, ds = make_store () in
  let r = check_against_oracle "paper skyline" store ds paper_query in
  Alcotest.(check bool) "nonempty skyline" true (List.length r.Engine.rows > 0);
  (* Independent Pareto check: no returned row dominated by any other
     returned row. *)
  let goals = [ ("age", Ast.Min); ("cnt", Ast.Max) ] in
  List.iter
    (fun row ->
      if List.exists (fun other -> Ranking.dominates goals other row) r.Engine.rows then
        Alcotest.fail "returned row is dominated")
    r.Engine.rows

let test_similarity_query () =
  let store, ds = make_store () in
  (* Long pattern -> q-gram index path. *)
  let some_title =
    List.find_map
      (fun (tr : Triple.t) ->
        if String.equal tr.Triple.attr "title" then Value.as_string tr.Triple.value else None)
      ds.Publications.triples
    |> Option.get
  in
  let rng = Unistore_util.Rng.create 99 in
  let typod = Unistore_workload.Namegen.typo rng some_title in
  let src =
    Printf.sprintf "SELECT ?p WHERE { (?p,'title',?t) FILTER edist(?t,'%s') <= 2 }" typod
  in
  ignore (check_against_oracle "similarity" store ds src)

let test_substring_query () =
  let store, ds = make_store () in
  (* Find a word inside an existing title and query with contains(). *)
  let title =
    List.find_map
      (fun (tr : Triple.t) ->
        if String.equal tr.Triple.attr "title" then Value.as_string tr.Triple.value else None)
      ds.Publications.triples
    |> Option.get
  in
  let word =
    match String.split_on_char ' ' title with w :: _ -> w | [] -> title
  in
  let src =
    Printf.sprintf "SELECT ?p, ?t WHERE { (?p,'title',?t) FILTER contains(?t,'%s') }" word
  in
  let r = check_against_oracle "substring" store ds src in
  (* The q-gram path must beat flooding on messages at this size. *)
  Alcotest.(check bool)
    (Printf.sprintf "uses index (%d msgs)" r.Engine.messages)
    true (r.Engine.messages < 40)

let test_topn_traversal_query () =
  let store, ds = make_store () in
  let src = "SELECT ?a, ?v WHERE { (?a,'age',?v) } ORDER BY ?v ASC LIMIT 4" in
  (* The plan uses the traversal... *)
  (match Unistore.explain store src with
  | Ok plan -> (
    match (List.hd plan.Physical.steps).Physical.access with
    | Unistore_qproc.Cost.ATopN ("age", 4) -> ()
    | a -> Alcotest.failf "expected topn access, got %a" Unistore_qproc.Cost.pp_access a)
  | Error e -> Alcotest.fail e);
  (* ... and the answer is a correct top-4: the value multiset matches the
     reference, and every returned row really exists (ties at the cut-off
     may legitimately pick different authors). *)
  let q = Parser.parse_exn src in
  let expected = ref_eval ds.Publications.triples q in
  let all_rows = ref_eval ds.Publications.triples { q with Ast.limit = None; order = None } in
  match Unistore.query store src with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "complete" true r.Engine.complete;
    let ages rows =
      List.map (fun b -> Option.get (Option.bind (Binding.find b "v") Value.as_int)) rows
      |> List.sort compare
    in
    check Alcotest.(list int) "smallest ages" (ages expected) (ages r.Engine.rows);
    let valid = fingerprints all_rows in
    List.iter
      (fun row ->
        if not (List.mem (Binding.fingerprint row) valid) then Alcotest.fail "fabricated row")
      r.Engine.rows

let test_union_query () =
  let store, ds = make_store () in
  (* Authors interested in databases OR systems. *)
  let src =
    "SELECT ?x, ?t WHERE { (?x,'interested_in',?t) FILTER ?t = 'databases' } UNION {      (?x,'interested_in',?t) FILTER ?t = 'systems' }"
  in
  let r = check_against_oracle "union" store ds src in
  Alcotest.(check bool) "nonempty" true (List.length r.Engine.rows > 0);
  (* Same rows as the equivalent OR filter. *)
  let or_src =
    "SELECT ?x, ?t WHERE { (?x,'interested_in',?t) FILTER ?t = 'databases' OR ?t = 'systems' }"
  in
  (match Unistore.query store or_src with
  | Ok r2 ->
    check Alcotest.(list string) "union = OR" (fingerprints r2.Engine.rows)
      (fingerprints r.Engine.rows)
  | Error e -> Alcotest.fail e);
  (* Heterogeneous branches + distinct + post clauses. *)
  ignore
    (check_against_oracle "union heterogeneous" store ds
       "SELECT DISTINCT ?x WHERE { (?x,'series',?s) FILTER ?s = 'ICDE' } UNION {         (?x,'year',?y) FILTER ?y >= 2006 } LIMIT 50");
  (* Explain shows branch plans. *)
  match Unistore.explain store src with
  | Ok plan -> check Alcotest.int "one union branch" 1 (List.length plan.Physical.branches)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Ranking/similarity fast paths: optimized and naive arms, and both
   overlays, must produce identical result sets.                       *)

let canonical_skyline_query =
  "SELECT ?a,?age,?cnt WHERE { (?a,'age',?age) (?a,'num_of_pubs',?cnt) } \
   ORDER BY SKYLINE OF ?age MIN, ?cnt MAX"

let test_skyline_pushdown_agrees () =
  (* The canonical-shape skyline runs as a leaf-reduced scan on P-Grid
     with the fast paths on (single broadcast step — asserted, so the
     pushdown actually engaged), and as a regular plan with them off or
     on Chord; every arm must produce the reference rows. *)
  let optimized, ds = make_store () in
  let naive, _ = make_store ~rank:Unistore.no_rank_config () in
  let chord, _ = make_store ~overlay:Unistore.Chord_trie () in
  let r_opt = check_against_oracle "skyline pushdown" optimized ds canonical_skyline_query in
  (match r_opt.Engine.plan.Physical.steps with
  | [ s ] when s.Physical.access = Unistore_qproc.Cost.ABroadcast -> ()
  | _ -> Alcotest.fail "expected the pushdown's single broadcast step");
  let r_naive = check_against_oracle "skyline regular plan" naive ds canonical_skyline_query in
  let r_chord = check_against_oracle "skyline on chord" chord ds canonical_skyline_query in
  check
    Alcotest.(list string)
    "pushdown = regular plan"
    (fingerprints r_naive.Engine.rows)
    (fingerprints r_opt.Engine.rows);
  check
    Alcotest.(list string)
    "pgrid = chord" (fingerprints r_chord.Engine.rows) (fingerprints r_opt.Engine.rows)

let test_rank_paths_agree_across_overlays () =
  (* Gram pruning and batching change which postings are fetched, never
     which triples are returned — raced across both overlays. *)
  let module Tstore = Unistore_triple.Tstore in
  let optimized, ds = make_store () in
  let naive, _ = make_store ~rank:Unistore.no_rank_config () in
  let chord, _ = make_store ~overlay:Unistore.Chord_trie () in
  let title =
    List.find_map
      (fun (tr : Triple.t) ->
        if String.equal tr.Triple.attr "title" then Value.as_string tr.Triple.value else None)
      ds.Publications.triples
    |> Option.get
  in
  let sub = if String.length title >= 8 then String.sub title 1 7 else title in
  let ids (found : Triple.t list) =
    List.map
      (fun (tr : Triple.t) -> tr.Triple.oid ^ "/" ^ Value.to_display tr.Triple.value)
      found
    |> List.sort_uniq compare
  in
  let sim store =
    let found, (meta : Tstore.meta) =
      Tstore.similar_sync (Unistore.tstore store) ~origin:3 ~attr:"title" ~pattern:title ~d:2 ()
    in
    Alcotest.(check bool) "similar complete" true meta.Tstore.complete;
    ids found
  in
  let containing store =
    let found, (meta : Tstore.meta) =
      Tstore.containing_sync (Unistore.tstore store) ~origin:5 ~attr:"title" ~pattern:sub ()
    in
    Alcotest.(check bool) "containing complete" true meta.Tstore.complete;
    ids found
  in
  let reference = sim optimized in
  Alcotest.(check bool) "similarity query has matches" true (reference <> []);
  check Alcotest.(list string) "sim: optimized = naive" (sim naive) reference;
  check Alcotest.(list string) "sim: pgrid = chord" (sim chord) reference;
  let sub_reference = containing optimized in
  Alcotest.(check bool) "substring query has matches" true (sub_reference <> []);
  check Alcotest.(list string) "substring: optimized = naive" (containing naive) sub_reference;
  check Alcotest.(list string) "substring: pgrid = chord" (containing chord) sub_reference

let test_strategies_agree () =
  let store, ds = make_store () in
  let src =
    "SELECT ?name WHERE { (?a,'name',?name) (?a,'has_published',?t) (?p,'title',?t) \
     (?p,'published_in',?cn) (?c,'confname',?cn) (?c,'series',?s) FILTER ?s = 'VLDB' }"
  in
  let r1 = check_against_oracle "centralized" store ds ~strategy:Unistore.Centralized src in
  let r2 = check_against_oracle "mutant" store ds ~strategy:Unistore.Mutant src in
  check Alcotest.(list string) "same rows" (fingerprints r1.Engine.rows) (fingerprints r2.Engine.rows);
  Alcotest.(check bool) "mutant shipped bytes" true (r2.Engine.bytes_shipped > 0);
  check Alcotest.int "centralized ships nothing" 0 r1.Engine.bytes_shipped

let test_chord_substrate_agrees () =
  let store, ds = make_store ~overlay:Unistore.Chord_trie () in
  ignore
    (check_against_oracle "chord eq" store ds
       "SELECT ?a WHERE { (?a,'series',?s) FILTER ?s = 'ICDE' }");
  ignore
    (check_against_oracle "chord range" store ds
       "SELECT ?a, ?v WHERE { (?a,'age',?v) FILTER ?v >= 30 AND ?v < 50 }");
  (* Mutant silently degrades to centralized on Chord. *)
  match Unistore.query store ~strategy:Unistore.Mutant "SELECT ?a WHERE { (?a,'series',?s) }" with
  | Ok r -> (
    match r.Engine.strategy with
    | Unistore.Centralized -> ()
    | Unistore.Mutant -> Alcotest.fail "chord cannot run mutant plans")
  | Error e -> Alcotest.fail e

let test_mapping_expansion () =
  let store, ds = make_store () in
  Alcotest.(check bool) "fb contacts loaded" true (Unistore.load store Demo_data.contacts_fb > 0);
  List.iter
    (fun (a, b) -> Alcotest.(check bool) "mapping stored" true (Unistore.add_mapping store a b))
    Demo_data.contact_mappings;
  Unistore.settle store;
  ignore ds;
  let src = "SELECT ?n WHERE { (?u,'name',?n) FILTER prefix(?n,'Marcel') }" in
  (match Unistore.query store src with
  | Ok r -> check Alcotest.int "no expansion: fb rows invisible" 0 (List.length r.Engine.rows)
  | Error e -> Alcotest.fail e);
  match Unistore.query store ~expand_mappings:true src with
  | Ok r -> (
    match r.Engine.rows with
    | [ row ] ->
      check
        Alcotest.(option string)
        "found through mapping" (Some "Marcel Karnstedt")
        (Option.bind (Binding.find row "n") Value.as_string)
    | l -> Alcotest.failf "expected 1 row, got %d" (List.length l))
  | Error e -> Alcotest.fail e

let test_explain () =
  let store, _ = make_store () in
  match Unistore.explain store paper_query with
  | Ok plan ->
    check Alcotest.int "8 steps" 8 (List.length plan.Physical.steps);
    (* Must be renderable. *)
    let s = Format.asprintf "%a" Unistore.pp_plan plan in
    Alcotest.(check bool) "plan renders" true (String.length s > 50)
  | Error e -> Alcotest.fail e

let test_parse_error_propagates () =
  let store, _ = make_store ~peers:8 () in
  match Unistore.query store "SELECT garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error"

let test_failures_reported () =
  let store, ds = make_store ~peers:32 () in
  (* Kill a third of the peers: queries should either stay correct or be
     flagged PARTIAL — never silently wrong-and-complete. *)
  Unistore.kill_peers store [ 1; 4; 7; 10; 13; 16; 19; 22; 25; 28 ];
  let q = Parser.parse_exn "SELECT ?a, ?v WHERE { (?a,'age',?v) }" in
  let expected = fingerprints (ref_eval ds.Publications.triples q) in
  match Unistore.query store "SELECT ?a, ?v WHERE { (?a,'age',?v) }" with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let got = fingerprints r.Engine.rows in
    let subset = List.for_all (fun fp -> List.mem fp expected) got in
    Alcotest.(check bool) "answers are a subset of the truth" true subset;
    if r.Engine.complete then
      check Alcotest.(list string) "complete implies exact" expected got

let test_pp_table_renders () =
  let store, _ = make_store ~peers:16 () in
  match Unistore.query store "SELECT ?n WHERE { (?a,'name',?n) } LIMIT 3" with
  | Ok r ->
    let s = Format.asprintf "%a" Unistore.pp_table r in
    Alcotest.(check bool) "has header" true (String.length s > 0);
    Alcotest.(check bool) "mentions rows" true
      (let sub = "row(s)" in
       let rec go i =
         i + String.length sub <= String.length s
         && (String.sub s i (String.length sub) = sub || go (i + 1))
       in
       go 0)
  | Error e -> Alcotest.fail e

let test_delete_and_update_through_queries () =
  let store, ds = make_store ~peers:24 () in
  (* Pick a concrete author triple from the dataset. *)
  let victim =
    List.find
      (fun (tr : Triple.t) -> String.equal tr.Triple.attr "age")
      ds.Publications.triples
  in
  let oid = victim.Triple.oid in
  let old_age = Option.get (Value.as_int victim.Triple.value) in
  (* Update: the author ages by a year. *)
  Alcotest.(check bool) "update ok" true
    (Unistore.update_value store ~oid ~attr:"age" ~old_value:(Value.I old_age)
       (Value.I (old_age + 1)));
  let q v = Printf.sprintf "SELECT ?a WHERE { (?a,'age',?x) FILTER ?x = %d }" v in
  (match Unistore.query store (q (old_age + 1)) with
  | Ok r ->
    Alcotest.(check bool) "new age visible" true
      (List.exists
         (fun row -> Option.bind (Binding.find row "a") Value.as_string = Some oid)
         r.Engine.rows)
  | Error e -> Alcotest.fail e);
  (match Unistore.query store (q old_age) with
  | Ok r ->
    Alcotest.(check bool) "old age gone" true
      (List.for_all
         (fun row -> Option.bind (Binding.find row "a") Value.as_string <> Some oid)
         r.Engine.rows)
  | Error e -> Alcotest.fail e);
  (* Delete: the whole field disappears from query results. *)
  let tr = Triple.make ~oid ~attr:"age" (Value.I (old_age + 1)) in
  Alcotest.(check bool) "delete ok" true (Unistore.delete_triple store tr);
  match Unistore.query store (q (old_age + 1)) with
  | Ok r ->
    Alcotest.(check bool) "deleted triple unqueryable" true
      (List.for_all
         (fun row -> Option.bind (Binding.find row "a") Value.as_string <> Some oid)
         r.Engine.rows)
  | Error e -> Alcotest.fail e

let test_distributed_stats_collection () =
  let store, ds = make_store ~peers:16 () in
  (* The flooding-based collection must agree with the oracle catalog. *)
  let oracle = Unistore_qproc.Qstats.of_triples ds.Publications.triples in
  Unistore.refresh_stats store;
  let collected = Unistore.stats store in
  check Alcotest.int "total triples" oracle.Unistore_qproc.Qstats.total_triples
    collected.Unistore_qproc.Qstats.total_triples;
  check Alcotest.int "distinct oids" oracle.Unistore_qproc.Qstats.distinct_oids
    collected.Unistore_qproc.Qstats.distinct_oids;
  check Alcotest.int "attribute count"
    (List.length oracle.Unistore_qproc.Qstats.attrs)
    (List.length collected.Unistore_qproc.Qstats.attrs);
  List.iter
    (fun (a, (o : Unistore_qproc.Qstats.attr_stats)) ->
      match List.assoc_opt a collected.Unistore_qproc.Qstats.attrs with
      | Some c ->
        check Alcotest.int (a ^ " count") o.Unistore_qproc.Qstats.count
          c.Unistore_qproc.Qstats.count;
        check Alcotest.int (a ^ " distinct") o.Unistore_qproc.Qstats.distinct
          c.Unistore_qproc.Qstats.distinct
      | None -> Alcotest.failf "attribute %s missing from collected stats" a)
    oracle.Unistore_qproc.Qstats.attrs

let test_query_tracing () =
  let store, _ = make_store ~peers:24 () in
  let tr = Unistore.start_trace store in
  (match Unistore.query store "SELECT ?n WHERE { (?a,'name',?n) (?a,'age',?v) FILTER ?v >= 30 }" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let module Trace = Unistore_sim.Trace in
  Alcotest.(check bool) "events recorded" true (Trace.length tr > 0);
  let kinds = List.map (fun (k, _, _) -> k) (Trace.by_kind tr) in
  Alcotest.(check bool) "range messages traced" true
    (List.mem "range" kinds || List.mem "lookup" kinds);
  let delivered, _, _, in_flight = Trace.outcome_counts tr in
  Alcotest.(check bool) "messages delivered" true (delivered > 0);
  check Alcotest.int "nothing stuck" 0 in_flight;
  (* The trace count matches the metering on a quiet network. *)
  let before = Trace.length tr in
  (match Unistore.query store "SELECT ?a WHERE { (?a,'series',?s) FILTER ?s = 'ICDE' }" with
  | Ok r ->
    Unistore.settle store;
    check Alcotest.int "trace delta = report messages" r.Engine.messages
      (Trace.length tr - before)
  | Error e -> Alcotest.fail e);
  (* After stopping, nothing further is recorded. *)
  Unistore.stop_trace store;
  let final = Trace.length tr in
  match Unistore.query store "SELECT ?n WHERE { (?a,'name',?n) }" with
  | Ok _ -> check Alcotest.int "stopped" final (Trace.length tr)
  | Error e -> Alcotest.fail e

let test_planetlab_latency_config () =
  let rng = Unistore_util.Rng.create 7 in
  let ds = Publications.generate rng Publications.default_params in
  let config =
    { Unistore.default_config with peers = 24; latency = Latency.Planetlab; seed = 3 }
  in
  let store = Unistore.create ~sample_keys:(Publications.sample_keys ds) config in
  ignore (Unistore.load store ds.Publications.tuples);
  Unistore.set_stats_of_triples store ds.Publications.triples;
  Unistore.settle store;
  (* The querying origin can happen to own the key region (then the
     query is local and fast); try several origins and require that the
     remote ones show wide-area latencies. *)
  let max_latency = ref 0.0 in
  List.iter
    (fun origin ->
      match
        Unistore.query store ~origin "SELECT ?a WHERE { (?a,'series',?s) FILTER ?s = 'ICDE' }"
      with
      | Ok r ->
        Alcotest.(check bool) "complete" true r.Engine.complete;
        max_latency := Float.max !max_latency r.Engine.latency
      | Error e -> Alcotest.fail e)
    [ 0; 5; 11; 17; 23 ];
  Alcotest.(check bool) "wide-area latency visible (>10ms)" true (!max_latency > 10.0)

(* ------------------------------------------------------------------ *)
(* Property: random conjunctive queries agree with the reference
   evaluator. One shared deployment serves all generated queries. *)

let shared_store : (Unistore.t * Publications.dataset) Lazy.t =
  lazy
    (let rng = Unistore_util.Rng.create 71 in
     let ds =
       Publications.generate rng
         { Publications.default_params with n_authors = 10; pubs_per_author = 2; typo_rate = 0.0 }
     in
     let config = { Unistore.default_config with peers = 16; seed = 72 } in
     let store = Unistore.create ~sample_keys:(Publications.sample_keys ds) config in
     ignore (Unistore.load store ds.Publications.tuples);
     Unistore.set_stats_of_triples store ds.Publications.triples;
     Unistore.settle store;
     (store, ds))

let gen_random_query : Ast.query QCheck2.Gen.t =
  let open QCheck2.Gen in
  let num_attr = oneofl [ "age"; "num_of_pubs"; "year" ] in
  let str_attr = oneofl [ "name"; "title"; "published_in"; "confname"; "series"; "interested_in" ] in
  let var v = Ast.TVar v in
  let cmp = oneofl [ Ast.Eq; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Neq ] in
  let num_filter v =
    let* op = cmp and* c = 0 -- 60 in
    return (Ast.ECmp (op, Ast.EVar v, Ast.EConst (Value.I c)))
  in
  let pat s a o = Ast.mk_pattern (var s) (Ast.TConst (Value.S a)) (var o) in
  let single =
    let* a = num_attr and* f = num_filter "v" in
    return (Ast.mk_query ~projection:[ "x"; "v" ] ~filters:[ f ] [ pat "x" a "v" ])
  in
  let star_join =
    let* a1 = str_attr and* a2 = num_attr and* f = num_filter "w" and* distinct = bool in
    return
      (Ast.mk_query ~distinct ~projection:[ "v"; "w" ] ~filters:[ f ]
         [ pat "x" a1 "v"; pat "x" a2 "w" ])
  in
  let var_attr =
    let* topic = oneofl [ "databases"; "networks"; "ir"; "systems" ] in
    return
      (Ast.mk_query ~projection:[ "x"; "p" ]
         [ Ast.mk_pattern (var "x") (var "p") (Ast.TConst (Value.S topic)) ])
  in
  let skyline =
    return
      (Ast.mk_query ~projection:[ "a"; "c" ]
         ~order:(Ast.Skyline [ ("a", Ast.Min); ("c", Ast.Max) ])
         [ pat "x" "age" "a"; pat "x" "num_of_pubs" "c" ])
  in
  let union_shape =
    let* t1 = oneofl [ "databases"; "networks" ] and* t2 = oneofl [ "ir"; "systems" ] in
    return
      (Ast.mk_query ~distinct:true ~projection:[ "x" ]
         ~filters:[ Ast.ECmp (Ast.Eq, Ast.EVar "t", Ast.EConst (Value.S t1)) ]
         ~union_branches:
           [
             ( [ pat "x" "classified_in" "u" ],
               [ Ast.ECmp (Ast.Eq, Ast.EVar "u", Ast.EConst (Value.S t2)) ] );
           ]
         [ pat "x" "interested_in" "t" ])
  in
  let contains_shape =
    let* pat_s = oneofl [ "base"; "data"; "net"; "sys"; "ern" ] in
    return
      (Ast.mk_query ~projection:[ "x"; "v" ]
         ~filters:[ Ast.EContains (Ast.EVar "v", Ast.EConst (Value.S pat_s)) ]
         [ pat "x" "interested_in" "v" ])
  in
  oneof [ single; star_join; var_attr; skyline; union_shape; contains_shape ]

let prop_random_queries_match_reference =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:30 ~name:"random queries = reference evaluator"
       ~print:(fun q -> Format.asprintf "%a" Ast.pp_query q)
       gen_random_query
       (fun q ->
         let store, ds = Lazy.force shared_store in
         let expected = fingerprints (ref_eval ds.Publications.triples q) in
         let src = Format.asprintf "%a" Ast.pp_query q in
         match Unistore.query store src with
         | Error e -> QCheck2.Test.fail_reportf "query error: %s" e
         | Ok r ->
           if not r.Engine.complete then QCheck2.Test.fail_reportf "incomplete";
           let got = fingerprints r.Engine.rows in
           if got <> expected then
             QCheck2.Test.fail_reportf "rows differ: got %d, expected %d" (List.length got)
               (List.length expected)
           else true))

let () =
  Alcotest.run "unistore_core"
    [
      ( "queries",
        [
          Alcotest.test_case "equality selection" `Quick test_simple_selection;
          Alcotest.test_case "range selection" `Quick test_range_query;
          Alcotest.test_case "multi-pattern join" `Quick test_join_query;
          Alcotest.test_case "variable attribute" `Quick test_var_attr_query;
          Alcotest.test_case "order/limit/distinct" `Quick test_order_limit_distinct;
          Alcotest.test_case "paper's skyline query" `Quick test_paper_skyline_query;
          Alcotest.test_case "similarity query" `Quick test_similarity_query;
          Alcotest.test_case "substring query" `Quick test_substring_query;
          Alcotest.test_case "union query" `Quick test_union_query;
          Alcotest.test_case "top-n traversal query" `Quick test_topn_traversal_query;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "centralized = mutant" `Quick test_strategies_agree;
          Alcotest.test_case "chord substrate" `Quick test_chord_substrate_agrees;
          Alcotest.test_case "skyline pushdown agrees" `Quick test_skyline_pushdown_agrees;
          Alcotest.test_case "rank paths agree across overlays" `Quick
            test_rank_paths_agree_across_overlays;
        ] );
      ( "features",
        [
          Alcotest.test_case "mapping expansion" `Quick test_mapping_expansion;
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "parse errors propagate" `Quick test_parse_error_propagates;
          Alcotest.test_case "failures reported honestly" `Quick test_failures_reported;
          Alcotest.test_case "table rendering" `Quick test_pp_table_renders;
          Alcotest.test_case "planetlab latency" `Quick test_planetlab_latency_config;
          Alcotest.test_case "query tracing" `Quick test_query_tracing;
          Alcotest.test_case "distributed stats collection" `Quick test_distributed_stats_collection;
          Alcotest.test_case "delete/update through queries" `Quick
            test_delete_and_update_through_queries;
          prop_random_queries_match_reference;
        ] );
    ]
