(* Tests for the VQL language front-end (unistore_vql). *)

module Value = Unistore_triple.Value
module Ast = Unistore_vql.Ast
module Lexer = Unistore_vql.Lexer
module Parser = Unistore_vql.Parser
module Algebra = Unistore_vql.Algebra

let check = Alcotest.check

let parse_ok src =
  match Parser.parse src with Ok q -> q | Error e -> Alcotest.failf "parse failed: %s" e

let parse_err src =
  match Parser.parse src with Ok _ -> Alcotest.failf "expected failure for %S" src | Error e -> e

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* The paper's §2 example query, verbatim modulo whitespace. *)
let paper_query =
  "SELECT ?name,?age,?cnt\n\
   WHERE {(?a,'name',?name) (?a,'age',?age)\n\
   (?a,'num_of_pubs',?cnt)\n\
   (?a,'has_published',?title) (?p,'title',?title)\n\
   (?p,'published_in',?conf) (?c,'confname',?conf)\n\
   (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3\n\
   }\n\
   ORDER BY SKYLINE OF ?age MIN, ?cnt MAX"

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lex_basic () =
  let toks = Lexer.tokenize "SELECT ?x WHERE { (?x,'a',1) }" |> List.map fst in
  check Alcotest.int "token count" 13 (List.length toks);
  (match toks with
  | Lexer.SELECT :: Lexer.VAR "x" :: Lexer.WHERE :: Lexer.LBRACE :: _ -> ()
  | _ -> Alcotest.fail "unexpected token stream");
  match List.rev toks with Lexer.EOF :: _ -> () | _ -> Alcotest.fail "missing EOF"

let test_lex_keywords_case_insensitive () =
  let toks = Lexer.tokenize "select Where fIlTeR skyline" |> List.map fst in
  check Alcotest.int "4+eof" 5 (List.length toks);
  match toks with
  | [ Lexer.SELECT; Lexer.WHERE; Lexer.FILTER; Lexer.SKYLINE; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "keywords not recognized case-insensitively"

let test_lex_strings () =
  (match Lexer.tokenize "'hello world'" |> List.map fst with
  | [ Lexer.STRING "hello world"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "basic string");
  (match Lexer.tokenize {|'it\'s'|} |> List.map fst with
  | [ Lexer.STRING "it's"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "escaped quote");
  match Lexer.tokenize "'ICDE 2006 - WS'" |> List.map fst with
  | [ Lexer.STRING "ICDE 2006 - WS"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "string with dash (not a comment)"

let test_lex_numbers () =
  (match Lexer.tokenize "42 -7 3.5 -2.5e3" |> List.map fst with
  | [ Lexer.INT 42; Lexer.INT (-7); Lexer.FLOAT 3.5; Lexer.FLOAT (-2500.0); Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "numbers")

let test_lex_operators () =
  match Lexer.tokenize "= != < <= > >= <>" |> List.map fst with
  | [ Lexer.EQ; Lexer.NEQ; Lexer.LT; Lexer.LE; Lexer.GT; Lexer.GE; Lexer.NEQ; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "operators"

let test_lex_comment () =
  match Lexer.tokenize "SELECT -- a comment\n ?x" |> List.map fst with
  | [ Lexer.SELECT; Lexer.VAR "x"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "comment skipped"

let test_lex_errors () =
  (try
     ignore (Lexer.tokenize "'unterminated");
     Alcotest.fail "expected lex error"
   with Lexer.Error _ -> ());
  try
    ignore (Lexer.tokenize "@");
    Alcotest.fail "expected lex error"
  with Lexer.Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_paper_query () =
  let q = parse_ok paper_query in
  check Alcotest.(option (list string)) "projection" (Some [ "name"; "age"; "cnt" ]) q.Ast.projection;
  check Alcotest.int "8 patterns" 8 (List.length q.Ast.patterns);
  check Alcotest.int "1 filter" 1 (List.length q.Ast.filters);
  (match q.Ast.filters with
  | [ Ast.ECmp (Ast.Lt, Ast.EEdist (Ast.EVar "sr", Ast.EConst (Value.S "ICDE")), Ast.EConst (Value.I 3)) ] ->
    ()
  | _ -> Alcotest.fail "edist filter shape");
  match q.Ast.order with
  | Some (Ast.Skyline [ ("age", Ast.Min); ("cnt", Ast.Max) ]) -> ()
  | _ -> Alcotest.fail "skyline clause"

let test_parse_star_distinct_limit () =
  let q = parse_ok "SELECT DISTINCT * WHERE { (?a,'x',?v) } LIMIT 10" in
  Alcotest.(check bool) "distinct" true q.Ast.distinct;
  check Alcotest.(option (list string)) "star" None q.Ast.projection;
  check Alcotest.(option int) "limit" (Some 10) q.Ast.limit

let test_parse_order_by () =
  let q = parse_ok "SELECT ?v WHERE { (?a,'x',?v) } ORDER BY ?v DESC, ?a" in
  match q.Ast.order with
  | Some (Ast.OrderBy [ ("v", Ast.Desc); ("a", Ast.Asc) ]) -> ()
  | _ -> Alcotest.fail "order clause"

let test_parse_filter_boolean_ops () =
  let q =
    parse_ok
      "SELECT ?v WHERE { (?a,'x',?v) FILTER ?v > 3 AND NOT (?v = 5 OR ?v = 7) }"
  in
  check Alcotest.int "one filter" 1 (List.length q.Ast.filters)

let test_parse_union () =
  let q =
    parse_ok
      "SELECT ?x WHERE { (?x,'a',?v) FILTER ?v > 1 } UNION { (?x,'b',?w) } UNION { (?x,'c',?u)        FILTER ?u = 2 }"
  in
  check Alcotest.int "two union branches" 2 (List.length q.Ast.union_branches);
  (match q.Ast.union_branches with
  | [ (ps1, fs1); (ps2, fs2) ] ->
    check Alcotest.int "branch1 patterns" 1 (List.length ps1);
    check Alcotest.int "branch1 filters" 0 (List.length fs1);
    check Alcotest.int "branch2 patterns" 1 (List.length ps2);
    check Alcotest.int "branch2 filters" 1 (List.length fs2)
  | _ -> Alcotest.fail "branch shape");
  (* Filter vars must be bound within their own branch. *)
  let e =
    parse_err "SELECT ?x WHERE { (?x,'a',?v) } UNION { (?x,'b',?w) FILTER ?v > 1 }"
  in
  Alcotest.(check bool) "cross-branch filter rejected" true
    (contains_sub e "within its branch");
  (* pp roundtrip with union. *)
  let printed = Format.asprintf "%a" Ast.pp_query q in
  let q2 = parse_ok printed in
  check Alcotest.int "union preserved" 2 (List.length q2.Ast.union_branches)

let test_parse_constant_pattern () =
  let q = parse_ok "SELECT ?a WHERE { (?a, 'year', 2006) }" in
  match q.Ast.patterns with
  | [ { Ast.subj = Ast.TVar "a"; attr = Ast.TConst (Value.S "year"); obj = Ast.TConst (Value.I 2006); _ } ] ->
    ()
  | _ -> Alcotest.fail "pattern terms"

let test_parse_errors () =
  let e1 = parse_err "SELECT ?x WHERE { }" in
  Alcotest.(check bool) "mentions pattern" true (contains_sub e1 "pattern")

let test_parse_more_errors () =
  ignore (parse_err "SELECT WHERE { (?a,'x',?v) }");
  ignore (parse_err "SELECT ?v WHERE { (?a,'x',?v) } LIMIT 'ten'");
  ignore (parse_err "SELECT ?v WHERE { (?a,'x',?v) } ORDER BY SKYLINE OF ?v");
  ignore (parse_err "SELECT ?v WHERE { (?a,'x' }");
  ignore (parse_err "SELECT ?v WHERE { (?a,'x',?v) } trailing")

let test_validate_unbound () =
  let e = parse_err "SELECT ?ghost WHERE { (?a,'x',?v) }" in
  Alcotest.(check bool) "mentions unbound" true (contains_sub e "not bound");
  let e2 = parse_err "SELECT ?v WHERE { (?a,'x',?v) FILTER ?ghost > 1 }" in
  Alcotest.(check bool) "filter unbound" true (contains_sub e2 "not bound");
  let e3 = parse_err "SELECT ?v WHERE { (?a,'x',?v) } LIMIT 0" in
  Alcotest.(check bool) "bad limit" true (contains_sub e3 "LIMIT")

let test_roundtrip_pp () =
  (* pp output of the paper query re-parses to the same AST. *)
  let q = parse_ok paper_query in
  let printed = Format.asprintf "%a" Ast.pp_query q in
  let q2 = parse_ok printed in
  check Alcotest.int "patterns preserved" (List.length q.Ast.patterns) (List.length q2.Ast.patterns);
  check Alcotest.(option (list string)) "projection preserved" q.Ast.projection q2.Ast.projection

(* ------------------------------------------------------------------ *)
(* Algebra *)

let test_algebra_shape () =
  let q = parse_ok "SELECT ?v WHERE { (?a,'x',?v) (?a,'y',?w) FILTER ?w > 1 } LIMIT 5" in
  match Algebra.of_query q with
  | Algebra.Limit (5, Algebra.Project ([ "v" ], Algebra.Select (_, Algebra.Join (Algebra.Scan _, Algebra.Scan _)))) ->
    ()
  | plan -> Alcotest.failf "unexpected plan shape: %a" Algebra.pp plan

let test_algebra_vars () =
  let q = parse_ok "SELECT * WHERE { (?a,'x',?v) (?a,'y',?w) }" in
  check Alcotest.(list string) "vars" [ "a"; "v"; "w" ] (Algebra.vars (Algebra.of_query q))

let test_var_constraints () =
  let q =
    parse_ok
      "SELECT ?v WHERE { (?a,'x',?v) (?a,'s',?s) FILTER ?v >= 10 AND ?v < 20 FILTER \
       edist(?s,'ICDE') < 3 FILTER prefix(?s,'IC') }"
  in
  let cs = Algebra.var_constraints q.Ast.filters in
  (match List.assoc_opt "v" cs with
  | Some [ Algebra.Clower (Value.I 10, true); Algebra.Cupper (Value.I 20, false) ] -> ()
  | _ -> Alcotest.fail "range constraints on ?v");
  match List.assoc_opt "s" cs with
  | Some [ Algebra.Cedist ("ICDE", 2); Algebra.Cprefix "IC" ] -> ()
  | _ -> Alcotest.fail "string constraints on ?s"

let test_eval_expr () =
  let env = function
    | "x" -> Some (Value.I 5)
    | "s" -> Some (Value.S "ICDE")
    | "f" -> Some (Value.F 2.5)
    | _ -> None
  in
  let ev src =
    (* Parse an expression by wrapping it in a query. *)
    let q = parse_ok (Printf.sprintf "SELECT ?x WHERE { (?x,'a',?s) (?x,'b',?f) FILTER %s }" src) in
    match q.Ast.filters with [ e ] -> Algebra.eval_pred env e | _ -> Alcotest.fail "one filter"
  in
  Alcotest.(check bool) "cmp int" true (ev "?x > 3");
  Alcotest.(check bool) "cmp int false" false (ev "?x > 7");
  Alcotest.(check bool) "int/float unify" true (ev "?f < ?x");
  Alcotest.(check bool) "edist" true (ev "edist(?s,'ICDM') = 1");
  Alcotest.(check bool) "contains" true (ev "contains(?s,'CD')");
  Alcotest.(check bool) "prefix" true (ev "prefix(?s,'IC')");
  Alcotest.(check bool) "prefix false" false (ev "prefix(?s,'CD')");
  Alcotest.(check bool) "and/or/not" true (ev "?x = 5 AND NOT (?x = 4 OR ?x = 6)");
  Alcotest.(check bool) "unbound var is error=false" false (ev "?x = 5 AND ?x < ?f AND ?x > ?f");
  Alcotest.(check bool) "type error is false" false (ev "?s > 3")

let test_eval_or_error_absorption () =
  let env = function "x" -> Some (Value.I 1) | _ -> None in
  let q = parse_ok "SELECT ?x WHERE { (?x,'a',?y) FILTER ?x = 1 OR ?y = 2 }" in
  match q.Ast.filters with
  | [ e ] -> Alcotest.(check bool) "true OR error = true" true (Algebra.eval_pred env e)
  | _ -> Alcotest.fail "one filter"

let () =
  Alcotest.run "unistore_vql"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lex_basic;
          Alcotest.test_case "keywords case-insensitive" `Quick test_lex_keywords_case_insensitive;
          Alcotest.test_case "strings" `Quick test_lex_strings;
          Alcotest.test_case "numbers" `Quick test_lex_numbers;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "comments" `Quick test_lex_comment;
          Alcotest.test_case "errors" `Quick test_lex_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "paper example query" `Quick test_parse_paper_query;
          Alcotest.test_case "star/distinct/limit" `Quick test_parse_star_distinct_limit;
          Alcotest.test_case "order by" `Quick test_parse_order_by;
          Alcotest.test_case "boolean filters" `Quick test_parse_filter_boolean_ops;
          Alcotest.test_case "constant patterns" `Quick test_parse_constant_pattern;
          Alcotest.test_case "union" `Quick test_parse_union;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "more errors" `Quick test_parse_more_errors;
          Alcotest.test_case "unbound variables rejected" `Quick test_validate_unbound;
          Alcotest.test_case "pp roundtrip" `Quick test_roundtrip_pp;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "canonical shape" `Quick test_algebra_shape;
          Alcotest.test_case "plan vars" `Quick test_algebra_vars;
          Alcotest.test_case "constraint extraction" `Quick test_var_constraints;
          Alcotest.test_case "expression evaluation" `Quick test_eval_expr;
          Alcotest.test_case "OR absorbs errors" `Quick test_eval_or_error_absorption;
        ] );
    ]
