(* Tests for the P-Grid overlay (unistore_pgrid). *)

open Unistore_util
module Sim = Unistore_sim.Sim
module Latency = Unistore_sim.Latency
module Net = Unistore_sim.Net
module Store = Unistore_pgrid.Store
module Node = Unistore_pgrid.Node
module Config = Unistore_pgrid.Config
module Message = Unistore_pgrid.Message
module Overlay = Unistore_pgrid.Overlay
module Build = Unistore_pgrid.Build
module Gossip = Unistore_pgrid.Gossip

let check = Alcotest.check

let item ?(version = 0) key item_id payload = { Store.key; item_id; payload; version }

(* ------------------------------------------------------------------ *)
(* Store *)

let test_store_put_find () =
  let s = Store.create () in
  ignore (Store.put s (item "k1" "a" "p1"));
  ignore (Store.put s (item "k1" "b" "p2"));
  ignore (Store.put s (item "k2" "c" "p3"));
  check Alcotest.int "size" 3 (Store.size s);
  check Alcotest.int "two under k1" 2 (List.length (Store.find s "k1"));
  check Alcotest.int "none under k3" 0 (List.length (Store.find s "k3"))

let test_store_versions () =
  let s = Store.create () in
  ignore (Store.put s (item ~version:1 "k" "a" "v1"));
  Alcotest.(check bool) "newer wins" true (Store.put s (item ~version:2 "k" "a" "v2"));
  Alcotest.(check bool) "stale rejected" false (Store.put s (item ~version:1 "k" "a" "old"));
  (match Store.find s "k" with
  | [ i ] ->
    check Alcotest.string "payload" "v2" i.Store.payload;
    check Alcotest.int "version" 2 i.Store.version
  | l -> Alcotest.failf "expected 1 item, got %d" (List.length l));
  check Alcotest.int "no growth" 1 (Store.size s)

let test_store_equal_version_idempotent () =
  let s = Store.create () in
  ignore (Store.put s (item ~version:1 "k" "a" "v1"));
  Alcotest.(check bool) "equal version accepted (idempotent retry)" true
    (Store.put s (item ~version:1 "k" "a" "v1"));
  check Alcotest.int "still one" 1 (Store.size s)

let test_store_range () =
  let s = Store.create () in
  List.iter (fun k -> ignore (Store.put s (item k k k))) [ "a"; "b"; "c"; "d"; "e" ];
  let got = Store.range s ~lo:"b" ~hi:"d" |> List.map (fun i -> i.Store.key) in
  check Alcotest.(list string) "inclusive range" [ "b"; "c"; "d" ] got;
  check Alcotest.(list string) "empty range" []
    (Store.range s ~lo:"x" ~hi:"z" |> List.map (fun i -> i.Store.key))

let test_store_prefix () =
  let s = Store.create () in
  List.iter (fun k -> ignore (Store.put s (item k k k))) [ "app"; "apple"; "apricot"; "banana" ];
  let got = Store.with_prefix s "ap" |> List.map (fun i -> i.Store.key) in
  check Alcotest.(list string) "prefix" [ "app"; "apple"; "apricot" ] got

let test_store_remove () =
  let s = Store.create () in
  ignore (Store.put s (item "k" "a" "p"));
  ignore (Store.put s (item "k" "b" "q"));
  Store.remove s ~key:"k" ~item_id:"a";
  check Alcotest.int "one left" 1 (Store.size s);
  Store.remove s ~key:"k" ~item_id:"b";
  check Alcotest.int "empty" 0 (Store.size s);
  check Alcotest.int "no entry" 0 (List.length (Store.find s "k"))

let test_store_partition () =
  let s = Store.create () in
  List.iter (fun k -> ignore (Store.put s (item k k k))) [ "a"; "b"; "c"; "d" ];
  let removed = Store.filter_partition s (fun i -> i.Store.key <= "b") in
  check Alcotest.int "kept" 2 (Store.size s);
  check Alcotest.int "removed" 2 (List.length removed)

let test_store_digest () =
  let s = Store.create () in
  ignore (Store.put s (item ~version:3 "k" "a" "p"));
  check
    Alcotest.(list (triple string string int))
    "digest" [ ("k", "a", 3) ] (Store.digest s)

(* ------------------------------------------------------------------ *)
(* Node *)

let test_node_path_refs () =
  let n = Node.create 0 in
  Node.set_path n (Bitkey.of_string "101") [| "m"; "t"; "p" |];
  check Alcotest.int "refs levels" 3 (Array.length n.Node.refs);
  Node.add_ref n ~level:0 7 ~cap:3;
  Node.add_ref n ~level:0 8 ~cap:3;
  Node.add_ref n ~level:0 7 ~cap:3;
  check Alcotest.int "no dup" 2 (List.length (Node.refs_at n 0));
  Node.add_ref n ~level:0 9 ~cap:3;
  Node.add_ref n ~level:0 10 ~cap:3;
  check Alcotest.int "capped" 3 (List.length (Node.refs_at n 0));
  Node.remove_ref n 8;
  Alcotest.(check bool) "removed" false (List.mem 8 (Node.refs_at n 0))

let test_node_path_growth_preserves_refs () =
  let n = Node.create 0 in
  Node.set_path n (Bitkey.of_string "1") [| "m" |];
  Node.add_ref n ~level:0 5 ~cap:3;
  Node.extend n ~bit:false ~boundary:"t";
  check Alcotest.string "path grew" "10" (Bitkey.to_string n.Node.path);
  check Alcotest.(list int) "level0 kept" [ 5 ] (Node.refs_at n 0);
  check Alcotest.(list int) "level1 empty" [] (Node.refs_at n 1)

let test_node_region_covers () =
  (* Path "10" with boundaries m (level 0, taken >=) and t (level 1,
     taken <): region is [m, t). *)
  let n = Node.create 0 in
  Node.set_path n (Bitkey.of_string "10") [| "m"; "t" |];
  (match Node.region n with
  | lo, Some hi ->
    check Alcotest.string "lo" "m" lo;
    check Alcotest.string "hi" "t" hi
  | _ -> Alcotest.fail "expected bounded region");
  Alcotest.(check bool) "covers p" true (Node.covers n "p");
  Alcotest.(check bool) "covers lo bound" true (Node.covers n "m");
  Alcotest.(check bool) "hi bound excluded" false (Node.covers n "t");
  Alcotest.(check bool) "below" false (Node.covers n "a");
  Alcotest.(check bool) "above" false (Node.covers n "z");
  Alcotest.(check bool) "side at level 0" true (Node.key_side n ~level:0 "p");
  Alcotest.(check bool) "side at level 1" false (Node.key_side n ~level:1 "p")

(* ------------------------------------------------------------------ *)
(* Overlay: helpers *)

let random_words rng n =
  List.init n (fun _ ->
      String.init (4 + Rng.int rng 8) (fun _ -> Char.chr (Char.code 'a' + Rng.int rng 26)))

let build_overlay ?(n = 32) ?(seed = 42) ?(model = Latency.Constant 1.0) ?(drop = 0.0)
    ?(config = Config.default) ?(balanced = false) ~keys () =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let latency = Latency.create model ~n ~rng in
  let ov = Build.oracle sim ~latency ~rng ~drop ~config ~n ~sample_keys:keys ~balanced () in
  ov

let insert_all ov keys =
  List.iteri
    (fun i k ->
      let origin = i mod Overlay.node_count ov in
      let r = Overlay.insert_sync ov ~origin ~key:k ~item_id:(Printf.sprintf "id%d" i) ~payload:k () in
      if not r.Overlay.complete then Alcotest.failf "insert of %S incomplete" k)
    keys

(* ------------------------------------------------------------------ *)
(* Overlay tests *)

let test_oracle_invariants () =
  let rng = Rng.create 1 in
  let keys = random_words rng 200 in
  let ov = build_overlay ~n:64 ~keys () in
  check Alcotest.(list string) "invariants hold" [] (Build.check_invariants ov);
  Alcotest.(check bool) "depth sane" true (Overlay.depth ov >= 4 && Overlay.depth ov <= 16)

let test_oracle_balanced_invariants () =
  let ov = build_overlay ~n:30 ~balanced:true ~keys:[] () in
  check Alcotest.(list string) "invariants hold (balanced)" [] (Build.check_invariants ov)

let test_oracle_single_peer () =
  let ov = build_overlay ~n:1 ~keys:[] () in
  let r = Overlay.insert_sync ov ~origin:0 ~key:"k" ~item_id:"a" ~payload:"p" () in
  Alcotest.(check bool) "insert ok" true r.Overlay.complete;
  let r = Overlay.lookup_sync ov ~origin:0 ~key:"k" in
  check Alcotest.int "found" 1 (List.length r.Overlay.items);
  check Alcotest.int "zero hops" 0 r.Overlay.hops

let test_insert_lookup_roundtrip () =
  let rng = Rng.create 2 in
  let keys = List.sort_uniq compare (random_words rng 150) in
  let ov = build_overlay ~n:64 ~keys () in
  insert_all ov keys;
  let depth = Overlay.depth ov in
  List.iteri
    (fun i k ->
      let origin = (i * 7) mod 64 in
      let r = Overlay.lookup_sync ov ~origin ~key:k in
      if not r.Overlay.complete then Alcotest.failf "lookup %S incomplete" k;
      if List.length r.Overlay.items < 1 then Alcotest.failf "lookup %S found nothing" k;
      if r.Overlay.hops > depth then
        Alcotest.failf "lookup %S took %d hops > depth %d" k r.Overlay.hops depth)
    keys

let test_lookup_missing_key () =
  let ov = build_overlay ~n:16 ~keys:[] () in
  let r = Overlay.lookup_sync ov ~origin:0 ~key:"nothing-here" in
  Alcotest.(check bool) "complete" true r.Overlay.complete;
  check Alcotest.int "empty" 0 (List.length r.Overlay.items)

let test_replication_places_copies () =
  let config = { Config.default with replication = 3 } in
  let rng = Rng.create 3 in
  let keys = random_words rng 50 in
  let ov = build_overlay ~n:24 ~config ~keys () in
  insert_all ov keys;
  Sim.run_all (Overlay.sim ov);
  (* Every responsible peer should hold a copy. *)
  List.iter
    (fun k ->
      let holders =
        Overlay.responsible ov k
        |> List.filter (fun (nd : Node.t) -> Store.find nd.Node.store k <> [])
      in
      if List.length holders < 2 then
        Alcotest.failf "key %S replicated on %d peers" k (List.length holders))
    keys

let range_oracle keys ~lo ~hi = List.filter (fun k -> k >= lo && k <= hi) keys

let test_range_shower_correct () =
  let rng = Rng.create 4 in
  let keys = List.sort_uniq compare (random_words rng 120) in
  let ov = build_overlay ~n:48 ~keys () in
  insert_all ov keys;
  List.iter
    (fun (lo, hi) ->
      let expected = range_oracle keys ~lo ~hi in
      let r = Overlay.range_sync ov ~origin:5 ~strategy:Message.Shower ~lo ~hi () in
      Alcotest.(check bool) (Printf.sprintf "complete [%s,%s]" lo hi) true r.Overlay.complete;
      let got = List.map (fun i -> i.Store.key) r.Overlay.items |> List.sort_uniq compare in
      check
        Alcotest.(list string)
        (Printf.sprintf "range [%s,%s]" lo hi)
        expected got)
    [ ("a", "e"); ("c", "czzz"); ("", "zzzz"); ("m", "m") ]

let test_range_sequential_correct () =
  let rng = Rng.create 5 in
  let keys = List.sort_uniq compare (random_words rng 100) in
  let ov = build_overlay ~n:32 ~keys () in
  insert_all ov keys;
  let lo = "b" and hi = "p" in
  let expected = range_oracle keys ~lo ~hi in
  let r = Overlay.range_sync ov ~origin:3 ~strategy:Message.Sequential ~lo ~hi () in
  Alcotest.(check bool) "complete" true r.Overlay.complete;
  let got = List.map (fun i -> i.Store.key) r.Overlay.items |> List.sort_uniq compare in
  check Alcotest.(list string) "sequential = oracle" expected got

let test_range_strategies_agree () =
  let rng = Rng.create 6 in
  let keys = List.sort_uniq compare (random_words rng 80) in
  let ov = build_overlay ~n:32 ~keys () in
  insert_all ov keys;
  let norm r = List.map (fun i -> i.Store.key) r.Overlay.items |> List.sort_uniq compare in
  let a = Overlay.range_sync ov ~origin:0 ~strategy:Message.Shower ~lo:"d" ~hi:"t" () in
  let b = Overlay.range_sync ov ~origin:0 ~strategy:Message.Sequential ~lo:"d" ~hi:"t" () in
  check Alcotest.(list string) "same answers" (norm a) (norm b)

let test_sequential_more_serial_latency () =
  let rng = Rng.create 7 in
  let keys = List.sort_uniq compare (random_words rng 200) in
  let ov = build_overlay ~n:64 ~model:(Latency.Constant 10.0) ~keys () in
  insert_all ov keys;
  let a = Overlay.range_sync ov ~origin:0 ~strategy:Message.Shower ~lo:"" ~hi:"zzzz" () in
  let b = Overlay.range_sync ov ~origin:0 ~strategy:Message.Sequential ~lo:"" ~hi:"zzzz" () in
  Alcotest.(check bool)
    (Printf.sprintf "sequential latency (%f) > shower (%f)" b.Overlay.latency a.Overlay.latency)
    true
    (b.Overlay.latency > a.Overlay.latency)

let test_budgeted_sequential_range () =
  let rng = Rng.create 61 in
  let keys = List.sort_uniq compare (random_words rng 120) in
  let ov = build_overlay ~n:32 ~keys () in
  insert_all ov keys;
  let budget = 7 in
  let r =
    Overlay.range_sync ov ~origin:2 ~strategy:Message.Sequential ~budget ~lo:"" ~hi:"zzzz" ()
  in
  Alcotest.(check bool) "complete" true r.Overlay.complete;
  let got = List.map (fun i -> i.Store.key) r.Overlay.items |> List.sort_uniq compare in
  (* Exactly the [budget] smallest keys (key order = value order). *)
  let expected = List.filteri (fun i _ -> i < budget) keys in
  check Alcotest.(list string) "the smallest keys" expected got;
  (* Far fewer messages than the unbudgeted traversal. *)
  let m0 = Net.total_sent (Overlay.net ov) in
  ignore (Overlay.range_sync ov ~origin:2 ~strategy:Message.Sequential ~budget ~lo:"" ~hi:"zzzz" ());
  let budgeted = Net.total_sent (Overlay.net ov) - m0 in
  let m1 = Net.total_sent (Overlay.net ov) in
  ignore (Overlay.range_sync ov ~origin:2 ~strategy:Message.Sequential ~lo:"" ~hi:"zzzz" ());
  let full = Net.total_sent (Overlay.net ov) - m1 in
  Alcotest.(check bool)
    (Printf.sprintf "early stop saves messages (%d < %d)" budgeted full)
    true (budgeted < full);
  (* Budget + shower is rejected. *)
  (try
     ignore (Overlay.range_sync ov ~origin:0 ~strategy:Message.Shower ~budget:3 ~lo:"a" ~hi:"b" ());
     Alcotest.fail "expected invalid_arg"
   with Invalid_argument _ -> ())

let test_prefix_search () =
  let keys = [ "apple"; "application"; "apply"; "banana"; "appetite"; "zebra" ] in
  let ov = build_overlay ~n:16 ~keys () in
  insert_all ov keys;
  let r = Overlay.prefix_sync ov ~origin:1 ~prefix:"appl" in
  Alcotest.(check bool) "complete" true r.Overlay.complete;
  let got = List.map (fun i -> i.Store.key) r.Overlay.items |> List.sort_uniq compare in
  check Alcotest.(list string) "prefix matches" [ "apple"; "application"; "apply" ] got

let test_broadcast_probe () =
  let rng = Rng.create 8 in
  let keys = List.sort_uniq compare (random_words rng 60) in
  let ov = build_overlay ~n:32 ~keys () in
  insert_all ov keys;
  let r = Overlay.broadcast_sync ov ~origin:2 ~pred:(fun i -> String.length i.Store.key > 6) in
  Alcotest.(check bool) "complete" true r.Overlay.complete;
  let expected = List.filter (fun k -> String.length k > 6) keys in
  let got = List.map (fun i -> i.Store.key) r.Overlay.items |> List.sort_uniq compare in
  check Alcotest.(list string) "probe results" expected got;
  (* The shower visits one replica per leaf; with replication 2-3 over 32
     peers that is at least 32/4 leaves. *)
  Alcotest.(check bool)
    (Printf.sprintf "visits one peer per leaf (%d)" r.Overlay.peers_hit)
    true
    (r.Overlay.peers_hit >= 8)

let test_hops_logarithmic () =
  let rng = Rng.create 9 in
  let keys = random_words rng 400 in
  let ov = build_overlay ~n:256 ~keys () in
  insert_all ov keys;
  let hops = ref [] in
  List.iteri
    (fun i k ->
      if i mod 4 = 0 then begin
        let r = Overlay.lookup_sync ov ~origin:(i mod 256) ~key:k in
        hops := float_of_int r.Overlay.hops :: !hops
      end)
    keys;
  let s = Stats.summarize !hops in
  (* log2 256 = 8; with replication-2 leaves the trie depth is ~7-9. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean hops %.2f within logarithmic budget" s.Stats.mean)
    true
    (s.Stats.mean <= 10.0)

let test_failure_lookup_retries () =
  let config = { Config.default with replication = 3; retries = 3; timeout_ms = 500.0 } in
  let rng = Rng.create 10 in
  let keys = random_words rng 60 in
  let ov = build_overlay ~n:32 ~config ~keys () in
  insert_all ov keys;
  Sim.run_all (Overlay.sim ov);
  (* Kill 20% of peers, excluding origin 0. *)
  let victims = [ 3; 7; 11; 19; 23; 29 ] in
  List.iter (Overlay.kill ov) victims;
  let ok = ref 0 and total = ref 0 in
  List.iteri
    (fun i k ->
      if i mod 2 = 0 then begin
        incr total;
        let r = Overlay.lookup_sync ov ~origin:0 ~key:k in
        if r.Overlay.complete && r.Overlay.items <> [] then incr ok
      end)
    keys;
  let frac = float_of_int !ok /. float_of_int !total in
  Alcotest.(check bool)
    (Printf.sprintf "survival rate %.2f >= 0.8" frac)
    true (frac >= 0.8)

let test_lookups_under_message_loss () =
  (* 5% iid message loss: end-to-end retries keep lookups exact. *)
  let config = { Config.default with timeout_ms = 300.0; retries = 4 } in
  let rng = Rng.create 87 in
  let keys = List.sort_uniq compare (random_words rng 60) in
  let ov = build_overlay ~n:32 ~drop:0.05 ~config ~keys () in
  (* Inserts may need retries too; insist they complete. *)
  List.iteri
    (fun i k ->
      let r = Overlay.insert_sync ov ~origin:(i mod 32) ~key:k ~item_id:(string_of_int i) ~payload:k () in
      if not r.Overlay.complete then Alcotest.failf "insert %S failed under loss" k)
    keys;
  Sim.run_all (Overlay.sim ov);
  let ok = ref 0 in
  List.iteri
    (fun i k ->
      let r = Overlay.lookup_sync ov ~origin:((i * 3) mod 32) ~key:k in
      if r.Overlay.complete && r.Overlay.items <> [] then incr ok)
    keys;
  Alcotest.(check bool)
    (Printf.sprintf "lookups survive 5%% loss (%d/%d)" !ok (List.length keys))
    true
    (!ok >= List.length keys * 9 / 10)

let test_update_and_gossip_convergence () =
  let config = { Config.default with replication = 4 } in
  let ov = build_overlay ~n:16 ~config ~keys:[ "k" ] () in
  let r = Overlay.insert_sync ov ~origin:0 ~key:"k" ~item_id:"x" ~payload:"v0" () in
  Alcotest.(check bool) "insert ok" true r.Overlay.complete;
  Sim.run_all (Overlay.sim ov);
  let r = Overlay.update_sync ov ~origin:1 ~key:"k" ~item_id:"x" ~payload:"v1" ~version:1 () in
  Alcotest.(check bool) "update ok" true r.Overlay.complete;
  Sim.run_all (Overlay.sim ov);
  (* Rumor may have missed replicas; run anti-entropy to convergence. *)
  let rec converge n =
    if n > 10 then ()
    else begin
      Gossip.anti_entropy_round ov;
      Sim.run_all (Overlay.sim ov);
      if Gossip.staleness ov ~key:"k" ~item_id:"x" ~version:1 > 0.0 then converge (n + 1)
    end
  in
  converge 0;
  check (Alcotest.float 1e-9) "fully converged" 0.0
    (Gossip.staleness ov ~key:"k" ~item_id:"x" ~version:1);
  (* Readers see the new version. *)
  let r = Overlay.lookup_sync ov ~origin:5 ~key:"k" in
  (match r.Overlay.items with
  | [ i ] -> check Alcotest.string "new payload" "v1" i.Store.payload
  | l -> Alcotest.failf "expected 1 item, got %d" (List.length l))

let test_stale_update_ignored () =
  let ov = build_overlay ~n:8 ~keys:[ "k" ] () in
  ignore (Overlay.insert_sync ov ~origin:0 ~key:"k" ~item_id:"x" ~payload:"v5" ~version:5 ());
  ignore (Overlay.update_sync ov ~origin:1 ~key:"k" ~item_id:"x" ~payload:"v3" ~version:3 ());
  Sim.run_all (Overlay.sim ov);
  let r = Overlay.lookup_sync ov ~origin:2 ~key:"k" in
  match r.Overlay.items with
  | [ i ] -> check Alcotest.string "kept newer" "v5" i.Store.payload
  | l -> Alcotest.failf "expected 1 item, got %d" (List.length l)

let test_delete () =
  let config = { Config.default with replication = 3 } in
  let ov = build_overlay ~n:16 ~config ~keys:[ "k1"; "k2" ] () in
  ignore (Overlay.insert_sync ov ~origin:0 ~key:"k1" ~item_id:"a" ~payload:"p1" ());
  ignore (Overlay.insert_sync ov ~origin:1 ~key:"k1" ~item_id:"b" ~payload:"p2" ());
  Sim.run_all (Overlay.sim ov);
  let r = Overlay.delete_sync ov ~origin:5 ~key:"k1" ~item_id:"a" in
  Alcotest.(check bool) "delete completes" true r.Overlay.complete;
  Sim.run_all (Overlay.sim ov);
  (* The other item under the same key survives; replicas are purged. *)
  let r = Overlay.lookup_sync ov ~origin:2 ~key:"k1" in
  (match r.Overlay.items with
  | [ i ] -> check Alcotest.string "b remains" "b" i.Store.item_id
  | l -> Alcotest.failf "expected 1 item, got %d" (List.length l));
  let holders =
    Overlay.responsible ov "k1"
    |> List.filter (fun (nd : Node.t) ->
           List.exists (fun (i : Store.item) -> i.Store.item_id = "a") (Store.find nd.Node.store "k1"))
  in
  check Alcotest.int "no replica still holds a" 0 (List.length holders);
  (* Deleting a non-existent item is a no-op that still completes. *)
  let r = Overlay.delete_sync ov ~origin:0 ~key:"nothing" ~item_id:"x" in
  Alcotest.(check bool) "idempotent delete" true r.Overlay.complete

let test_repair_refs () =
  let config = { Config.default with replication = 4 } in
  let rng = Rng.create 44 in
  let keys = random_words rng 100 in
  let ov = build_overlay ~n:32 ~config ~keys () in
  insert_all ov keys;
  Sim.run_all (Overlay.sim ov);
  List.iter (Overlay.kill ov) [ 1; 3; 5; 7; 9; 11; 13; 15; 17; 19; 21; 23 ];
  Build.repair_refs ov;
  (* After repair, every alive node's refs point only to alive peers
     wherever alive candidates exist. *)
  List.iter
    (fun (nd : Node.t) ->
      if Overlay.alive ov nd.Node.id then
        Array.iteri
          (fun l refs ->
            List.iter
              (fun r ->
                if not (Overlay.alive ov r) then
                  Alcotest.failf "peer%d level %d still references dead peer%d" nd.Node.id l r)
              refs)
          nd.Node.refs)
    (Overlay.nodes ov);
  (* And lookups succeed from an alive origin. *)
  let ok = ref 0 in
  List.iteri
    (fun i k ->
      if i mod 5 = 0 then begin
        let r = Overlay.lookup_sync ov ~origin:0 ~key:k in
        if r.Overlay.complete && r.Overlay.items <> [] then incr ok
      end)
    keys;
  Alcotest.(check bool) (Printf.sprintf "lookups ok after repair (%d/20)" !ok) true (!ok >= 19)

let test_send_task () =
  let ov = build_overlay ~n:4 ~keys:[] () in
  let ran_at = ref (-1) in
  Overlay.send_task ov ~src:0 ~dst:3 ~bytes:100 (fun peer -> ran_at := peer);
  Sim.run_all (Overlay.sim ov);
  check Alcotest.int "ran at destination" 3 !ran_at;
  Overlay.kill ov 2;
  let ran2 = ref false in
  Overlay.send_task ov ~src:0 ~dst:2 ~bytes:10 (fun _ -> ran2 := true);
  Sim.run_all (Overlay.sim ov);
  Alcotest.(check bool) "not run at dead peer" false !ran2

let test_load_balancing_under_skew () =
  (* Zipf-skewed keys: load-aware construction should spread storage much
     more evenly than uniform key-space splits. *)
  let rng = Rng.create 11 in
  let zipf = Zipf.create ~n:500 ~s:1.1 in
  let keys =
    List.init 2000 (fun i ->
        Printf.sprintf "val%04d-%d" (Zipf.sample zipf rng) i)
  in
  let imbalance balanced =
    let ov = build_overlay ~n:64 ~balanced ~keys () in
    insert_all ov keys;
    Sim.run_all (Overlay.sim ov);
    let sizes =
      Overlay.nodes ov |> List.map (fun (nd : Node.t) -> float_of_int (Store.size nd.Node.store))
    in
    let s = Stats.summarize sizes in
    s.Stats.max /. Float.max 1.0 s.Stats.mean
  in
  let with_lb = imbalance false and without_lb = imbalance true in
  Alcotest.(check bool)
    (Printf.sprintf "load-aware imbalance %.2f < uniform %.2f" with_lb without_lb)
    true (with_lb < without_lb)

let test_range_under_jittery_latency () =
  (* Regression: under heavy-tailed latencies a grandchild's RangeHit can
     arrive before its parent's; the termination detection must not end
     the shower early (token accounting). *)
  let rng = Rng.create 31 in
  let keys = List.sort_uniq compare (random_words rng 150) in
  let ov = build_overlay ~n:96 ~model:Latency.Planetlab ~keys () in
  insert_all ov keys;
  for trial = 0 to 9 do
    let lo = String.make 1 (Char.chr (Char.code 'a' + (trial mod 3))) in
    let hi = "z" in
    let expected = range_oracle keys ~lo ~hi in
    let r = Overlay.range_sync ov ~origin:(trial * 7 mod 96) ~lo ~hi () in
    Alcotest.(check bool) (Printf.sprintf "trial %d complete" trial) true r.Overlay.complete;
    let got = List.map (fun i -> i.Store.key) r.Overlay.items |> List.sort_uniq compare in
    check Alcotest.(list string) (Printf.sprintf "trial %d exact" trial) expected got
  done;
  (* Sequential and broadcast under the same jitter. *)
  let expected = range_oracle keys ~lo:"c" ~hi:"t" in
  let r = Overlay.range_sync ov ~origin:5 ~strategy:Message.Sequential ~lo:"c" ~hi:"t" () in
  Alcotest.(check bool) "sequential complete" true r.Overlay.complete;
  check
    Alcotest.(list string)
    "sequential exact" expected
    (List.map (fun i -> i.Store.key) r.Overlay.items |> List.sort_uniq compare);
  let r = Overlay.broadcast_sync ov ~origin:2 ~pred:(fun _ -> true) in
  Alcotest.(check bool) "broadcast complete" true r.Overlay.complete;
  check Alcotest.int "broadcast sees all" (List.length keys)
    (List.length (List.sort_uniq compare (List.map (fun i -> i.Store.key) r.Overlay.items)))

(* ------------------------------------------------------------------ *)
(* Bootstrap *)

let test_bootstrap_builds_trie () =
  let sim = Sim.create () in
  let rng = Rng.create 12 in
  let n = 24 in
  let latency = Latency.create (Latency.Constant 1.0) ~n ~rng in
  let config = Config.default in
  let word_rng = Rng.create 13 in
  let initial_data =
    List.init n (fun i ->
        let words = random_words word_rng 8 in
        ( i,
          List.mapi
            (fun j w -> { Store.key = w; item_id = Printf.sprintf "boot%d-%d" i j; payload = w; version = 0 })
            words ))
  in
  let ov, report =
    Build.bootstrap sim ~latency ~rng ~config ~n ~initial_data ~rounds:40 ~split_threshold:12 ()
  in
  Alcotest.(check bool) "coverage" true report.Build.coverage_ok;
  Alcotest.(check bool) "trie formed (depth>=2)" true (report.Build.final_depth >= 2);
  Alcotest.(check bool) "exchanges happened" true (report.Build.exchanges > n);
  (* The overlay must be usable: inserts and lookups work. *)
  let r = Overlay.insert_sync ov ~origin:0 ~key:"hello" ~item_id:"h" ~payload:"world" () in
  Alcotest.(check bool) "insert works" true r.Overlay.complete;
  let r = Overlay.lookup_sync ov ~origin:(n - 1) ~key:"hello" in
  Alcotest.(check bool) "lookup works" true (r.Overlay.complete && r.Overlay.items <> [])

let test_bootstrap_data_preserved () =
  let sim = Sim.create () in
  let rng = Rng.create 14 in
  let n = 12 in
  let latency = Latency.create (Latency.Constant 1.0) ~n ~rng in
  let config = Config.default in
  let initial_data =
    List.init n (fun i ->
        (i, [ { Store.key = Printf.sprintf "key%02d" i; item_id = Printf.sprintf "it%d" i; payload = "x"; version = 0 } ]))
  in
  let ov, _ = Build.bootstrap sim ~latency ~rng ~config ~n ~initial_data ~rounds:40 () in
  (* Every initial item must still exist somewhere in the network. *)
  let all_items =
    Overlay.nodes ov |> List.concat_map (fun (nd : Node.t) -> Store.to_list nd.Node.store)
  in
  List.iteri
    (fun i _ ->
      let id = Printf.sprintf "it%d" i in
      if not (List.exists (fun (it : Store.item) -> String.equal it.Store.item_id id) all_items)
      then Alcotest.failf "bootstrap lost item %s" id)
    initial_data

let test_join_running_overlay () =
  let rng = Rng.create 51 in
  let keys = random_words rng 60 in
  let ov = build_overlay ~n:16 ~keys () in
  insert_all ov keys;
  Sim.run_all (Overlay.sim ov);
  (* A new peer joins by cloning peer 3. *)
  Alcotest.(check bool) "join succeeds" true (Build.join ov ~id:100 ~bootstrap:3);
  Sim.run_all (Overlay.sim ov);
  let newcomer = Overlay.node ov 100 in
  let boot = Overlay.node ov 3 in
  Alcotest.(check bool) "same path" true (Bitkey.equal newcomer.Node.path boot.Node.path);
  check Alcotest.int "same data" (Store.size boot.Node.store) (Store.size newcomer.Node.store);
  Alcotest.(check bool) "replica registered" true (List.mem 100 boot.Node.replicas);
  (* The newcomer can serve queries: kill the whole original replica group
     and look the bootstrap's data up. *)
  let held = Store.to_list boot.Node.store in
  Overlay.kill ov 3;
  List.iter (Overlay.kill ov) (List.filter (fun p -> p <> 100) boot.Node.replicas);
  Build.repair_refs ov;
  (match held with
  | (it : Store.item) :: _ ->
    let r = Overlay.lookup_sync ov ~origin:0 ~key:it.Store.key in
    Alcotest.(check bool) "newcomer serves the data" true
      (r.Overlay.complete && r.Overlay.items <> [])
  | [] -> ());
  (* Joining via a dead bootstrap fails cleanly. *)
  Overlay.kill ov 5;
  Alcotest.(check bool) "dead bootstrap rejected" false (Build.join ov ~id:101 ~bootstrap:5)

let test_bootstrap_merge () =
  (* Two groups build overlays in isolation, then merge: cross-group
     lookups must start working. *)
  let sim = Sim.create () in
  let rng = Rng.create 17 in
  let n = 16 in
  let latency = Latency.create (Latency.Constant 1.0) ~n ~rng in
  let word_rng = Rng.create 18 in
  let initial_data =
    List.init n (fun i ->
        ( i,
          List.mapi
            (fun j w -> { Store.key = w; item_id = Printf.sprintf "m%d-%d" i j; payload = w; version = 0 })
            (random_words word_rng 6) ))
  in
  let ov, report =
    Build.bootstrap sim ~latency ~rng ~config:Config.default ~n ~initial_data ~rounds:60
      ~split_threshold:10 ~groups:2 ~merge_at:25 ()
  in
  Alcotest.(check bool) "coverage after merge" true report.Build.coverage_ok;
  (* Items contributed by group 0 peers must be findable from group 1. *)
  let group0_item = List.hd (snd (List.nth initial_data 0)) in
  let r = Overlay.lookup_sync ov ~origin:(n - 1) ~key:group0_item.Store.key in
  Alcotest.(check bool) "cross-group lookup works" true
    (r.Overlay.complete
    && List.exists
         (fun (i : Store.item) -> String.equal i.Store.item_id group0_item.Store.item_id)
         r.Overlay.items)

(* ------------------------------------------------------------------ *)
(* Message sizes *)

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let region = ("lo-bound", Some "hi-bound")

(* One witness per constructor; a new constructor without a case here
   fails the exhaustiveness check below. *)
let message_witnesses =
  let it = item "key#one" "id1" "payload-bytes" in
  [
    Message.Insert { rid = 1; item = it; origin = 0; hops = 0 };
    Message.Update { rid = 1; item = it; origin = 0; hops = 0; rounds = 1 };
    Message.Delete { rid = 1; key = "k"; item_id = "i"; origin = 0; hops = 0 };
    Message.Replicate { item = it; rounds_left = 1 };
    Message.Unreplicate { key = "k"; item_id = "i" };
    Message.Ack { rid = 1; hops = 0; region };
    Message.Lookup { rid = 1; key = "k"; origin = 0; hops = 0 };
    Message.Found { rid = 1; items = [ it ]; hops = 0; region; spread = [] };
    Message.Range
      {
        rid = 1; token = 2; lo = "a"; hi = "b"; clip_lo = "a"; clip_hi = Some "b"; origin = 0;
        reply_to = 0; hops = 0; strategy = Message.Shower; budget = None;
      };
    Message.RangeHit { rid = 1; token = 2; items = [ it ]; targets = [ 3; 4 ]; origin = 0; hops = 0 };
    Message.InsertBatch { rid = 1; items = [ it; it ]; origin = 0; hops = 0 };
    Message.AckBatch { rid = 1; keys = [ "k1"; "k2" ]; region; hops = 0 };
    Message.MultiLookup { rid = 1; keys = [ "k1"; "k2" ]; origin = 0; hops = 0 };
    Message.MultiFound { rid = 1; found = [ ("k1", [ it ]) ]; region; hops = 0 };
    Message.Probe
      { rid = 1; token = 2; clip_lo = ""; clip_hi = None; origin = 0; hops = 0; pred = (fun _ -> true); reduce = None };
    Message.Task { bytes = 16; run = ignore };
    Message.SyncDigest { digest = [ ("k", "i", 1) ] };
    Message.SyncRequest { wanted = [ ("k", "i") ] };
    Message.SyncItems { items = [ it ] };
    Message.StatGossip { summaries = [] };
    Message.Exchange { bytes = 16; run = ignore };
  ]

let test_message_sizes_positive () =
  (* Every constructor appears exactly once above. *)
  let kinds = List.sort_uniq compare (List.map Message.kind message_witnesses) in
  check Alcotest.int "all constructors covered" (List.length message_witnesses)
    (List.length kinds);
  List.iter
    (fun m ->
      if Message.size m < Message.header then
        Alcotest.failf "size of %s below header (%d < %d)" (Message.kind m) (Message.size m)
          Message.header;
      if Message.size m <= 0 then Alcotest.failf "non-positive size for %s" (Message.kind m))
    message_witnesses

let gen_item =
  QCheck2.Gen.(
    let str n = string_size ~gen:(char_range 'a' 'z') (1 -- n) in
    map
      (fun ((key, item_id), (payload, version)) -> { Store.key; item_id; payload; version })
      (pair (pair (str 24) (str 8)) (pair (str 60) (0 -- 5))))

let gen_items = QCheck2.Gen.(list_size (0 -- 12) gen_item)

(* Batch messages must cost exactly one envelope plus their items: the
   per-item payload bytes of the singleton messages they replace, with
   all but one header amortized away. *)
let prop_insert_batch_size =
  qtest "insert-batch size = header + item payloads" gen_items (fun items ->
      let single (it : Store.item) =
        Message.size (Message.Insert { rid = 0; item = it; origin = 0; hops = 0 })
        - Message.header
      in
      Message.size (Message.InsertBatch { rid = 0; items; origin = 0; hops = 0 })
      = Message.header + List.fold_left (fun acc it -> acc + single it) 0 items)

let prop_multi_lookup_size =
  qtest "multi-lookup size = header + key bytes"
    QCheck2.Gen.(list_size (0 -- 12) (string_size ~gen:(char_range 'a' 'z') (1 -- 24)))
    (fun keys ->
      Message.size (Message.MultiLookup { rid = 0; keys; origin = 0; hops = 0 })
      = Message.header + List.fold_left (fun acc k -> acc + String.length k) 0 keys)

let prop_multi_found_size =
  qtest "multi-found size = header + keyed item payloads"
    QCheck2.Gen.(
      list_size (0 -- 8)
        (pair (string_size ~gen:(char_range 'a' 'z') (1 -- 24)) (list_size (0 -- 4) gen_item)))
    (fun found ->
      let expected =
        Message.header
        + List.fold_left
            (fun acc (k, items) ->
              acc + String.length k
              + List.fold_left (fun a (i : Store.item) -> a + Store.item_bytes i) 0 items)
            0 found
        + String.length (fst region)
        + String.length (Option.get (snd region))
        + 2
      in
      Message.size (Message.MultiFound { rid = 0; found; region; hops = 0 }) = expected)

let prop_range_hit_size =
  qtest "range-hit size = header + items + tokens"
    QCheck2.Gen.(pair gen_items (list_size (0 -- 6) small_nat))
    (fun (items, targets) ->
      Message.size
        (Message.RangeHit { rid = 0; token = 0; items; targets; origin = 0; hops = 0 })
      = Message.header
        + List.fold_left (fun a (i : Store.item) -> a + Store.item_bytes i) 0 items
        + (4 * List.length targets))

(* ------------------------------------------------------------------ *)
(* Failover property *)

(* Any kill set that leaves at least one member of every leaf's replica
   group alive keeps every key resolvable from an alive origin — replica
   failover routes around the corpses. Reviving the victims and running
   a repair round must then leave nothing for the overlay auditor to
   complain about. *)
let prop_failover_any_kill_set =
  qtest ~count:12 "random kill sets: every key resolvable via failover"
    QCheck2.Gen.(0 -- 10_000)
    (fun kill_seed ->
      let config = { Config.default with replication = 3; timeout_ms = 200.0; retries = 2 } in
      let keys = List.sort_uniq compare (random_words (Rng.create 51) 50) in
      let ov = build_overlay ~n:24 ~config ~keys () in
      insert_all ov keys;
      Sim.run_all (Overlay.sim ov);
      (* Group peers by leaf path; kill a random subset that spares one
         member per group (and peer 0, the query origin). *)
      let krng = Rng.create kill_seed in
      let groups = Hashtbl.create 16 in
      List.iter
        (fun (n : Node.t) ->
          let cur = Option.value (Hashtbl.find_opt groups n.Node.path) ~default:[] in
          Hashtbl.replace groups n.Node.path (n.Node.id :: cur))
        (Overlay.nodes ov);
      let victims =
        Hashtbl.fold
          (fun _ ids acc ->
            let ids = List.sort compare ids in
            let keep = List.nth ids (Rng.int krng (List.length ids)) in
            List.filter (fun id -> id <> keep && id <> 0 && Rng.int krng 2 = 0) ids @ acc)
          groups []
      in
      List.iter (Overlay.kill ov) victims;
      let ok =
        List.for_all
          (fun k ->
            let r = Overlay.lookup_sync ov ~origin:0 ~key:k in
            r.Overlay.complete && r.Overlay.items <> [])
          keys
      in
      List.iter (Overlay.revive ov) victims;
      ignore (Unistore_pgrid.Repair.round ov);
      Sim.run_all (Overlay.sim ov);
      ok
      && not (Unistore_analysis.Diagnostic.has_errors (Unistore_analysis.Audit.pgrid ov)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "unistore_pgrid"
    [
      ( "store",
        [
          Alcotest.test_case "put/find" `Quick test_store_put_find;
          Alcotest.test_case "versions LWW" `Quick test_store_versions;
          Alcotest.test_case "idempotent retry" `Quick test_store_equal_version_idempotent;
          Alcotest.test_case "range" `Quick test_store_range;
          Alcotest.test_case "prefix" `Quick test_store_prefix;
          Alcotest.test_case "remove" `Quick test_store_remove;
          Alcotest.test_case "partition" `Quick test_store_partition;
          Alcotest.test_case "digest" `Quick test_store_digest;
        ] );
      ( "node",
        [
          Alcotest.test_case "path and refs" `Quick test_node_path_refs;
          Alcotest.test_case "path growth" `Quick test_node_path_growth_preserves_refs;
          Alcotest.test_case "region/covers" `Quick test_node_region_covers;
        ] );
      ( "overlay",
        [
          Alcotest.test_case "oracle invariants" `Quick test_oracle_invariants;
          Alcotest.test_case "oracle invariants (balanced)" `Quick test_oracle_balanced_invariants;
          Alcotest.test_case "single peer" `Quick test_oracle_single_peer;
          Alcotest.test_case "insert/lookup roundtrip" `Quick test_insert_lookup_roundtrip;
          Alcotest.test_case "lookup missing key" `Quick test_lookup_missing_key;
          Alcotest.test_case "replication places copies" `Quick test_replication_places_copies;
          Alcotest.test_case "range shower = oracle" `Quick test_range_shower_correct;
          Alcotest.test_case "range sequential = oracle" `Quick test_range_sequential_correct;
          Alcotest.test_case "strategies agree" `Quick test_range_strategies_agree;
          Alcotest.test_case "sequential is serial" `Quick test_sequential_more_serial_latency;
          Alcotest.test_case "budgeted sequential range" `Quick test_budgeted_sequential_range;
          Alcotest.test_case "prefix search" `Quick test_prefix_search;
          Alcotest.test_case "broadcast probe" `Quick test_broadcast_probe;
          Alcotest.test_case "hops logarithmic" `Slow test_hops_logarithmic;
          Alcotest.test_case "lookups survive failures" `Quick test_failure_lookup_retries;
          Alcotest.test_case "lookups under message loss" `Quick test_lookups_under_message_loss;
          Alcotest.test_case "update + anti-entropy converge" `Quick test_update_and_gossip_convergence;
          Alcotest.test_case "stale update ignored" `Quick test_stale_update_ignored;
          Alcotest.test_case "send_task" `Quick test_send_task;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "repair_refs" `Quick test_repair_refs;
          Alcotest.test_case "load balancing under skew" `Slow test_load_balancing_under_skew;
          Alcotest.test_case "ranges exact under jittery latency" `Quick
            test_range_under_jittery_latency;
        ] );
      ( "message",
        [
          Alcotest.test_case "every constructor sized" `Quick test_message_sizes_positive;
          prop_insert_batch_size;
          prop_multi_lookup_size;
          prop_multi_found_size;
          prop_range_hit_size;
        ] );
      ("failover", [ prop_failover_any_kill_set ]);
      ( "bootstrap",
        [
          Alcotest.test_case "builds a usable trie" `Quick test_bootstrap_builds_trie;
          Alcotest.test_case "preserves data" `Quick test_bootstrap_data_preserved;
          Alcotest.test_case "merging two overlays" `Quick test_bootstrap_merge;
          Alcotest.test_case "join a running overlay" `Quick test_join_running_overlay;
        ] );
    ]
