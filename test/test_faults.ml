(* Tests for churn-hardened query processing: the deterministic
   fault-injection driver, retry/failover/partial-result behavior in the
   overlay, self-healing repair, and the fault-aware trace linter.

   Flakiness policy: there is no wall-clock and no ambient randomness
   anywhere below — every kill, revive, loss burst and retry delay is a
   pure function of the simulator seed and the fault-scenario seed, so
   each of these tests either always passes or always fails. Thresholds
   ("recall >= 0.95") are checked against deterministic replays, not
   statistical runs. *)

open Unistore_util
module Sim = Unistore_sim.Sim
module Latency = Unistore_sim.Latency
module Net = Unistore_sim.Net
module Trace = Unistore_sim.Trace
module Faults = Unistore_sim.Faults
module Store = Unistore_pgrid.Store
module Node = Unistore_pgrid.Node
module Config = Unistore_pgrid.Config
module Message = Unistore_pgrid.Message
module Overlay = Unistore_pgrid.Overlay
module Build = Unistore_pgrid.Build
module Repair = Unistore_pgrid.Repair
module Metrics = Unistore_obs.Metrics
module Binding = Unistore_qproc.Binding
module Publications = Unistore_workload.Publications
module D = Unistore_analysis.Diagnostic

let check = Alcotest.check

let random_words rng n =
  List.init n (fun _ ->
      String.init (4 + Rng.int rng 8) (fun _ -> Char.chr (Char.code 'a' + Rng.int rng 26)))

let build_overlay ?(n = 32) ?(seed = 42) ?(model = Latency.Constant 1.0)
    ?(config = Config.default) ~keys () =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let latency = Latency.create model ~n ~rng in
  Build.oracle sim ~latency ~rng ~drop:0.0 ~config ~n ~sample_keys:keys ~balanced:false ()

let insert_all ov keys =
  List.iteri
    (fun i k ->
      let r =
        Overlay.insert_sync ov ~origin:(i mod Overlay.node_count ov) ~key:k
          ~item_id:(Printf.sprintf "id%d" i) ~payload:k ()
      in
      if not r.Overlay.complete then Alcotest.failf "insert of %S incomplete" k)
    keys

let with_metrics ov =
  let m = Metrics.create () in
  Overlay.set_metrics ov (Some m);
  m

(* ------------------------------------------------------------------ *)
(* Determinism *)

(* The driver's contract: same seed, same deployment => byte-identical
   fault log, across every fault family at once. *)
let full_spec =
  Faults.spec ~seed:13 ~duration_ms:20_000.0
    ~churn:(Faults.churn_spec ~interval_ms:500.0 ~down_ms:900.0 ~rate:0.2 ())
    ~bursts:[ { Faults.burst_at = 3_000.0; burst_ms = 2_000.0; burst_drop = 0.4 } ]
    ~slow:{ Faults.slow_at = 6_000.0; slow_ms = 3_000.0; slow_fraction = 0.25; slow_factor = 8.0 }
    ~partition:
      { Faults.part_at = 10_000.0; part_ms = 4_000.0; groups = [ [ 1; 2; 3 ]; [ 4; 5; 6 ] ] }
    ~protected:[ 0 ] ()

let run_scenario () =
  let keys = random_words (Rng.create 3) 40 in
  let ov = build_overlay ~n:24 ~keys () in
  insert_all ov keys;
  Sim.run_all (Overlay.sim ov);
  let h = Faults.inject (Overlay.net ov) full_spec in
  Sim.run_all (Overlay.sim ov);
  h

let test_deterministic_replay () =
  let h1 = run_scenario () in
  let h2 = run_scenario () in
  Alcotest.(check bool) "scenario actually crashed peers" true (Faults.crashes h1 > 0);
  Alcotest.(check bool) "victims revive" true (Faults.revives h1 > 0);
  check Alcotest.string "byte-identical fault log across replays" (Faults.render_log h1)
    (Faults.render_log h2);
  (* A different seed must not replay the same schedule. *)
  let keys = random_words (Rng.create 3) 40 in
  let ov = build_overlay ~n:24 ~keys () in
  insert_all ov keys;
  Sim.run_all (Overlay.sim ov);
  let h3 = Faults.inject (Overlay.net ov) { full_spec with Faults.seed = 14 } in
  Sim.run_all (Overlay.sim ov);
  Alcotest.(check bool) "different seed, different schedule" false
    (String.equal (Faults.render_log h1) (Faults.render_log h3))

let test_protected_never_killed () =
  let h = run_scenario () in
  List.iter
    (fun (e : Faults.event) ->
      if e.Faults.peer = 0 && String.equal e.Faults.fault "fault.crash" then
        Alcotest.failf "protected peer 0 was crashed at %.1f" e.Faults.at)
    (Faults.log h)

(* ------------------------------------------------------------------ *)
(* Recall under churn (facade level, mirroring the churn benchmark) *)

let workload =
  [
    "SELECT ?a WHERE { (?a,'num_of_pubs',2) }";
    "SELECT ?a,?g WHERE { (?a,'age',?g) FILTER ?g >= 30 FILTER ?g <= 55 }";
    "SELECT ?n,?g WHERE { (?a,'name',?n) (?a,'age',?g) }";
  ]

let row_set (r : Unistore.Report.report) =
  List.sort compare (List.map Binding.fingerprint r.Unistore.Report.rows)

let deploy_pubs ~retry =
  let rng = Rng.create 43 in
  let ds = Publications.generate rng { Publications.default_params with n_authors = 20 } in
  let store =
    Unistore.create
      ~sample_keys:(Publications.sample_keys ds)
      { Unistore.default_config with peers = 64; seed = 42; cache = Unistore.no_cache; retry }
  in
  ignore (Unistore.load store ds.Publications.tuples);
  Unistore.set_stats_of_triples store ds.Publications.triples;
  Unistore.settle store;
  store

(* Two query rounds under 30% churn (a kill wave every 10ms, down for
   10ms — faster than a healthy query finishes). *)
let churned_rows ~retry =
  let store = deploy_pubs ~retry in
  ignore
    (Unistore.inject_faults store
       (Unistore.Faults.spec ~seed:8 ~duration_ms:600_000.0
          ~churn:(Unistore.Faults.churn_spec ~interval_ms:10.0 ~down_ms:10.0 ~rate:0.3 ())
          ~protected:[ 0 ] ()));
  List.concat_map
    (fun _ ->
      List.map
        (fun vql ->
          match Unistore.query store ~origin:0 vql with
          | Ok r -> row_set r
          | Error e -> Alcotest.failf "query failed: %s" e)
        workload)
    [ 1; 2 ]

let recall ~reference rows =
  let rec inter a b =
    match (a, b) with
    | [], _ | _, [] -> 0
    | x :: xs, y :: ys ->
      let c = compare (x : string) y in
      if c = 0 then 1 + inter xs ys else if c < 0 then inter xs b else inter a ys
  in
  let matched, total =
    List.fold_left2
      (fun (m, t) ref_rows got -> (m + inter ref_rows got, t + List.length ref_rows))
      (0, 0) reference rows
  in
  float_of_int matched /. float_of_int total

let test_churn_recall () =
  (* Reference: the same deployment and workload with no faults. *)
  let store = deploy_pubs ~retry:Unistore.default_retry_config in
  let reference =
    List.concat_map
      (fun _ ->
        List.map
          (fun vql ->
            match Unistore.query store ~origin:0 vql with
            | Ok r ->
              Alcotest.(check bool) "fault-free query complete" true r.Unistore.Report.complete;
              row_set r
            | Error e -> Alcotest.failf "query failed: %s" e)
          workload)
      [ 1; 2 ]
  in
  let with_retry = recall ~reference (churned_rows ~retry:Unistore.default_retry_config) in
  let without = recall ~reference (churned_rows ~retry:Unistore.no_retry) in
  Alcotest.(check bool)
    (Printf.sprintf "retries keep recall >= 0.95 under 30%% churn (got %.3f)" with_retry)
    true (with_retry >= 0.95);
  Alcotest.(check bool)
    (Printf.sprintf "no_retry loses rows (recall %.3f < 1)" without)
    true (without < 1.0);
  Alcotest.(check bool)
    (Printf.sprintf "no_retry strictly worse (%.3f < %.3f)" without with_retry)
    true (without < with_retry)

(* ------------------------------------------------------------------ *)
(* Replica failover *)

(* Kill every replica of a key's group except one *while the lookup is
   in flight*: the first attempt dies with the primary, the retry fails
   over to the surviving replica. *)
let test_failover_mid_flight () =
  let config = { Config.default with replication = 3; timeout_ms = 200.0; retries = 2 } in
  let keys = random_words (Rng.create 8) 60 in
  let ov = build_overlay ~n:24 ~config ~keys () in
  let m = with_metrics ov in
  insert_all ov keys;
  Sim.run_all (Overlay.sim ov);
  let exercised = ref 0 in
  List.iteri
    (fun i k ->
      if i mod 6 = 0 then begin
        let holders = Overlay.responsible ov k |> List.map (fun (n : Node.t) -> n.Node.id) in
        match List.filter (fun id -> id <> 0) holders with
        | [] -> ()
        | survivor :: victims when victims <> [] ->
          incr exercised;
          let got = ref None in
          Overlay.lookup ov ~origin:0 ~key:k ~k:(fun r -> got := Some r);
          (* Mid-flight: after the request left, before any delivery. *)
          Sim.schedule (Overlay.sim ov) ~delay:0.1 (fun () ->
              List.iter (Overlay.kill ov) victims);
          Sim.run_all (Overlay.sim ov);
          (match !got with
          | None -> Alcotest.failf "lookup for %S hung" k
          | Some r ->
            Alcotest.(check bool) (Printf.sprintf "lookup %S complete after failover" k) true
              r.Overlay.complete;
            Alcotest.(check bool) (Printf.sprintf "lookup %S found the item" k) true
              (r.Overlay.items <> []);
            ignore survivor);
          List.iter (Overlay.revive ov) victims;
          Sim.run_all (Overlay.sim ov)
        | _ -> ()
      end)
    keys;
  Alcotest.(check bool) "scenario exercised" true (!exercised >= 3);
  Alcotest.(check bool) "retries actually fired" true (Metrics.counter m "retry.attempt" > 0)

(* ------------------------------------------------------------------ *)
(* Self-healing repair *)

let test_repair_restores_replication () =
  let config = { Config.default with replication = 3 } in
  let keys = random_words (Rng.create 21) 80 in
  let ov = build_overlay ~n:52 ~config ~keys () in
  let m = with_metrics ov in
  insert_all ov keys;
  Sim.run_all (Overlay.sim ov);
  (* Leaf census: repair can only refill a depleted group if some other
     group has spares, so deplete a minimal group and check a donor
     exists. *)
  let groups = Hashtbl.create 16 in
  List.iter
    (fun (n : Node.t) ->
      Hashtbl.replace groups n.Node.path
        (n.Node.id :: Option.value (Hashtbl.find_opt groups n.Node.path) ~default:[]))
    (Overlay.nodes ov);
  Alcotest.(check bool) "census has a spare donor" true
    (Hashtbl.fold (fun _ ids acc -> acc || List.length ids > 3) groups false);
  let victims =
    Hashtbl.fold
      (fun _ ids acc ->
        match acc with
        | [] when List.length ids = 3 && not (List.mem 0 ids) -> (
          match List.sort compare ids with a :: b :: _ -> [ a; b ] | _ -> [])
        | acc -> acc)
      groups []
  in
  Alcotest.(check bool) "found a group to deplete" true (victims <> []);
  List.iter (Overlay.kill ov) victims;
  let r = Repair.round ov in
  Sim.run_all (Overlay.sim ov);
  Alcotest.(check bool) "repair moved or adopted someone" true (r.Repair.adopted + r.Repair.moved > 0);
  check Alcotest.int "every depleted group repaired" 0 r.Repair.unrepaired;
  Alcotest.(check bool) "repair metrics recorded" true
    (Metrics.counter m "fault.repair.rounds" > 0);
  (* After repair + state transfer, every key is again held by at least
     two *alive* peers, and lookups stay exact. *)
  List.iter
    (fun k ->
      let alive_holders =
        Overlay.responsible ov k
        |> List.filter (fun (n : Node.t) ->
               Overlay.alive ov n.Node.id && Store.find n.Node.store k <> [])
      in
      if List.length alive_holders < 2 then
        Alcotest.failf "key %S alive-replicated on %d peers after repair" k
          (List.length alive_holders);
      let lr = Overlay.lookup_sync ov ~origin:0 ~key:k in
      if not (lr.Overlay.complete && lr.Overlay.items <> []) then
        Alcotest.failf "lookup %S failed after repair" k)
    keys

(* ------------------------------------------------------------------ *)
(* Partition => exact partial-result accounting *)

(* Two-leaf overlay, the far leaf partitioned away: a whole-keyspace
   range reaches exactly half its addressed regions, and the result says
   so. Healing the partition restores full coverage. *)
let test_partition_completeness () =
  let config =
    { Config.default with replication = 2; timeout_ms = 100.0; retries = 1; retry_jitter = 0.0 }
  in
  let keys = [ "aaa"; "aab"; "aac"; "zzx"; "zzy"; "zzz" ] in
  let ov = build_overlay ~n:4 ~config ~keys () in
  insert_all ov keys;
  Sim.run_all (Overlay.sim ov);
  check Alcotest.int "two leaves" 1 (Overlay.depth ov);
  (* Peers not co-located with origin 0 go to partition group 1. *)
  let origin_node = Overlay.node ov 0 in
  let far_ids =
    Overlay.nodes ov
    |> List.filter (fun (n : Node.t) -> n.Node.path <> origin_node.Node.path)
    |> List.map (fun (n : Node.t) -> n.Node.id)
  in
  List.iter (fun id -> Net.set_partition (Overlay.net ov) id ~group:1) far_ids;
  let r = Overlay.range_sync ov ~origin:0 ~lo:"a" ~hi:"{" () in
  Alcotest.(check bool) "partitioned range is partial" false r.Overlay.complete;
  check (Alcotest.float 0.001) "coverage = regions reached / addressed" 0.5
    r.Overlay.completeness;
  (* Graceful degradation: the reachable half's rows are still served. *)
  Alcotest.(check bool) "local rows still served" true (r.Overlay.items <> []);
  Net.clear_partitions (Overlay.net ov);
  let r = Overlay.range_sync ov ~origin:0 ~lo:"a" ~hi:"{" () in
  Alcotest.(check bool) "healed range complete" true r.Overlay.complete;
  check (Alcotest.float 0.001) "full coverage after heal" 1.0 r.Overlay.completeness;
  check Alcotest.int "all six keys back" 6
    (List.length (List.sort_uniq compare (List.map (fun (i : Store.item) -> i.Store.key) r.Overlay.items)))

(* ------------------------------------------------------------------ *)
(* Aggregation under crash: no wedged range queries *)

(* Regression: a peer killed while holding an aggregation buffer (it
   merges children's range hits before replying upward) used to wedge
   the whole range query — its children's tokens were accounted to a
   corpse. Now the origin's timeout fires, the wave is retried, and the
   query terminates either complete or explicitly partial. *)
let test_agg_owner_crash_terminates () =
  let config = { Config.default with timeout_ms = 300.0; retries = 2 } in
  let keys = random_words (Rng.create 31) 160 in
  let ov = build_overlay ~n:64 ~config ~keys () in
  let m = with_metrics ov in
  insert_all ov keys;
  Sim.run_all (Overlay.sim ov);
  let killed = ref None in
  let got = ref None in
  Overlay.range ov ~origin:0 ~lo:"a" ~hi:"{" ~k:(fun r -> got := Some r) ();
  (* Poll for an interior node holding an unflushed aggregation buffer
     and crash the first one found (the poll is itself deterministic:
     fixed schedule, fixed overlay). *)
  let rec poll t =
    if t < 20.0 then
      Sim.schedule (Overlay.sim ov) ~delay:0.5 (fun () ->
          if !killed = None then begin
            match List.filter (fun id -> id <> 0) (Overlay.agg_owners ov) with
            | id :: _ ->
              killed := Some id;
              Overlay.kill ov id
            | [] -> poll (t +. 0.5)
          end)
  in
  poll 0.0;
  Sim.run_all (Overlay.sim ov);
  (match !killed with
  | None -> Alcotest.fail "no aggregation buffer ever existed (test setup broken)"
  | Some _ -> ());
  match !got with
  | None -> Alcotest.fail "range query wedged after aggregator crash"
  | Some r ->
    if not r.Overlay.complete then begin
      Alcotest.(check bool) "partial result marked" true (Metrics.counter m "fault.partial" > 0);
      Alcotest.(check bool) "coverage estimate strictly partial" true
        (r.Overlay.completeness < 1.0)
    end

(* ------------------------------------------------------------------ *)
(* Backoff timing *)

(* With jitter zeroed and adaptive deadlines off, the retry schedule is
   exact: timeouts at 100ms, then 200ms, then 400ms — a request whose
   region is entirely dead gives up incomplete at precisely 700ms. *)
let test_backoff_schedule () =
  let config =
    {
      Config.default with
      replication = 2;
      timeout_ms = 100.0;
      retries = 2;
      retry_backoff = 2.0;
      retry_jitter = 0.0;
      adaptive_timeout = false;
    }
  in
  let keys = random_words (Rng.create 17) 40 in
  let ov = build_overlay ~n:16 ~config ~keys () in
  insert_all ov keys;
  Sim.run_all (Overlay.sim ov);
  let key =
    List.find
      (fun k ->
        Overlay.responsible ov k |> List.for_all (fun (n : Node.t) -> n.Node.id <> 0))
      keys
  in
  Overlay.responsible ov key |> List.iter (fun (n : Node.t) -> Overlay.kill ov n.Node.id);
  let r = Overlay.lookup_sync ov ~origin:0 ~key in
  Alcotest.(check bool) "gives up incomplete" false r.Overlay.complete;
  check (Alcotest.float 0.001) "zero coverage" 0.0 r.Overlay.completeness;
  check (Alcotest.float 1.0) "gave up at 100+200+400 ms" 700.0 r.Overlay.latency

(* The adaptive (EWMA) deadline policy — the default — gives up on a
   dead region strictly sooner than the fixed 100ms schedule: the
   lookups feeding the overlay's RTT estimators ran in a few simulated
   ms, so the learned deadline undercuts the configured ceiling. *)
let test_adaptive_deadline_beats_fixed () =
  let config =
    {
      Config.default with
      replication = 2;
      timeout_ms = 100.0;
      retries = 2;
      retry_backoff = 2.0;
      retry_jitter = 0.0;
    }
  in
  let keys = random_words (Rng.create 17) 40 in
  let ov = build_overlay ~n:16 ~config ~keys () in
  insert_all ov keys;
  Sim.run_all (Overlay.sim ov);
  (* Feed the RTT estimators with a few successful lookups first. *)
  List.iteri (fun i k -> if i < 8 then ignore (Overlay.lookup_sync ov ~origin:0 ~key:k)) keys;
  let key =
    List.find
      (fun k ->
        Overlay.responsible ov k |> List.for_all (fun (n : Node.t) -> n.Node.id <> 0))
      keys
  in
  Overlay.responsible ov key |> List.iter (fun (n : Node.t) -> Overlay.kill ov n.Node.id);
  let r = Overlay.lookup_sync ov ~origin:0 ~key in
  Alcotest.(check bool) "gives up incomplete" false r.Overlay.complete;
  Alcotest.(check bool) "adaptive giveup strictly beats the fixed schedule" true
    (r.Overlay.latency < 700.0)

(* ------------------------------------------------------------------ *)
(* Trace-linter integration *)

(* A seeded churn scenario over real queries: every crash that ate a
   request is followed by a retry/failover/partial marker, so the
   fault-aware linter reports no errors — and the trace really does
   contain crash markers (the check has something to chew on). *)
let test_lint_clean_under_churn () =
  let store = deploy_pubs ~retry:Unistore.default_retry_config in
  Unistore.reset_metrics store;
  let tr = Unistore.start_trace store in
  ignore
    (Unistore.inject_faults store
       (Unistore.Faults.spec ~seed:7 ~duration_ms:600_000.0
          ~churn:(Unistore.Faults.churn_spec ~interval_ms:10.0 ~down_ms:10.0 ~rate:0.3 ())
          ~protected:[ 0 ] ()));
  List.iter
    (fun vql ->
      match Unistore.query store ~origin:0 vql with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "query failed: %s" e)
    workload;
  Unistore.settle store;
  let crash_marks =
    List.filter
      (fun (e : Trace.event) -> Trace.is_fault e && String.equal e.Trace.kind "fault.crash")
      (Trace.events tr)
  in
  Alcotest.(check bool) "crash markers present in trace" true (crash_marks <> []);
  let ds = Unistore.lint_trace store ~against_metrics:true tr in
  if D.has_errors ds then
    Alcotest.failf "linter found errors under churn:\n%s" (D.render_all ds)

let () =
  Alcotest.run "unistore_faults"
    [
      ( "driver",
        [
          Alcotest.test_case "byte-identical replay" `Quick test_deterministic_replay;
          Alcotest.test_case "protected peers immune" `Quick test_protected_never_killed;
        ] );
      ( "robust-queries",
        [
          Alcotest.test_case "recall under 30% churn" `Quick test_churn_recall;
          Alcotest.test_case "replica failover mid-flight" `Quick test_failover_mid_flight;
          Alcotest.test_case "partition => exact partial coverage" `Quick
            test_partition_completeness;
          Alcotest.test_case "aggregator crash terminates" `Quick test_agg_owner_crash_terminates;
          Alcotest.test_case "backoff schedule exact" `Quick test_backoff_schedule;
          Alcotest.test_case "adaptive deadline beats fixed" `Quick
            test_adaptive_deadline_beats_fixed;
        ] );
      ( "repair",
        [ Alcotest.test_case "repair restores replication" `Quick test_repair_restores_replication ] );
      ( "lint",
        [ Alcotest.test_case "trace lints clean under churn" `Quick test_lint_clean_under_churn ] );
    ]
