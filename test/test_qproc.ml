(* Tests for the query processor (unistore_qproc): bindings, ranking,
   cost model and optimizer decisions. *)

module Value = Unistore_triple.Value
module Triple = Unistore_triple.Triple
module Ast = Unistore_vql.Ast
module Parser = Unistore_vql.Parser
module Binding = Unistore_qproc.Binding
module Ranking = Unistore_qproc.Ranking
module Qstats = Unistore_qproc.Qstats
module Cost = Unistore_qproc.Cost
module Optimizer = Unistore_qproc.Optimizer
module Physical = Unistore_qproc.Physical

let check = Alcotest.check

let b_of_list l =
  List.fold_left
    (fun b (v, x) -> match Binding.bind b v x with Some b -> b | None -> Alcotest.fail "bind")
    Binding.empty l

(* ------------------------------------------------------------------ *)
(* Binding *)

let test_binding_bind_consistency () =
  let b = b_of_list [ ("x", Value.I 1) ] in
  (match Binding.bind b "x" (Value.I 1) with
  | Some _ -> ()
  | None -> Alcotest.fail "same value rebind ok");
  match Binding.bind b "x" (Value.I 2) with
  | None -> ()
  | Some _ -> Alcotest.fail "conflicting rebind must fail"

let test_binding_match_triple () =
  let p = Parser.parse_exn "SELECT ?a WHERE { (?a,'name',?n) }" in
  let pattern = List.hd p.Ast.patterns in
  let tr = Triple.make ~oid:"a1" ~attr:"name" (Value.S "alice") in
  (match Binding.match_triple pattern tr with
  | Some b ->
    check Alcotest.(option string) "oid bound" (Some "a1")
      (Option.bind (Binding.find b "a") Value.as_string);
    check Alcotest.(option string) "name bound" (Some "alice")
      (Option.bind (Binding.find b "n") Value.as_string)
  | None -> Alcotest.fail "should match");
  let wrong = Triple.make ~oid:"a1" ~attr:"age" (Value.I 3) in
  match Binding.match_triple pattern wrong with
  | None -> ()
  | Some _ -> Alcotest.fail "attr mismatch must fail"

let test_binding_match_repeated_var () =
  (* (?x,'eq',?x) binds subj and obj to the same variable. *)
  let q = Parser.parse_exn "SELECT ?x WHERE { (?x,'eq',?x) }" in
  let pattern = List.hd q.Ast.patterns in
  let self = Triple.make ~oid:"v" ~attr:"eq" (Value.S "v") in
  let other = Triple.make ~oid:"v" ~attr:"eq" (Value.S "w") in
  Alcotest.(check bool) "self match" true (Option.is_some (Binding.match_triple pattern self));
  Alcotest.(check bool) "non-self rejected" false (Option.is_some (Binding.match_triple pattern other))

let test_binding_compatible () =
  let a = b_of_list [ ("x", Value.I 1); ("y", Value.I 2) ] in
  let b = b_of_list [ ("y", Value.I 2); ("z", Value.I 3) ] in
  let c = b_of_list [ ("y", Value.I 9) ] in
  (match Binding.compatible a b with
  | Some m -> check Alcotest.int "merged vars" 3 (List.length (Binding.vars m))
  | None -> Alcotest.fail "compatible should merge");
  match Binding.compatible a c with
  | None -> ()
  | Some _ -> Alcotest.fail "incompatible must fail"

let test_binding_join_key_project () =
  let a = b_of_list [ ("x", Value.I 1); ("y", Value.S "s") ] in
  Alcotest.(check bool) "join key exists" true (Option.is_some (Binding.join_key [ "x"; "y" ] a));
  Alcotest.(check bool) "missing var" true (Option.is_none (Binding.join_key [ "z" ] a));
  let p = Binding.project [ "x" ] a in
  check Alcotest.(list string) "projected" [ "x" ] (Binding.vars p)

let test_binding_fingerprint () =
  let a = b_of_list [ ("x", Value.I 1) ] in
  let b = b_of_list [ ("x", Value.I 1) ] in
  let c = b_of_list [ ("x", Value.I 2) ] in
  check Alcotest.string "equal fp" (Binding.fingerprint a) (Binding.fingerprint b);
  Alcotest.(check bool) "diff fp" false
    (String.equal (Binding.fingerprint a) (Binding.fingerprint c))

(* ------------------------------------------------------------------ *)
(* Ranking *)

let rows_of specs =
  List.map (fun (age, cnt) -> b_of_list [ ("age", Value.I age); ("cnt", Value.I cnt) ]) specs

let ages rows = List.map (fun b -> Option.get (Option.bind (Binding.find b "age") Value.as_int)) rows

let test_order_by () =
  let rows = rows_of [ (30, 5); (25, 2); (40, 9) ] in
  check Alcotest.(list int) "asc" [ 25; 30; 40 ] (ages (Ranking.order_by [ ("age", Ast.Asc) ] rows));
  check Alcotest.(list int) "desc" [ 40; 30; 25 ]
    (ages (Ranking.order_by [ ("age", Ast.Desc) ] rows))

let test_order_by_secondary () =
  let rows = rows_of [ (30, 5); (30, 2); (25, 9) ] in
  let sorted = Ranking.order_by [ ("age", Ast.Asc); ("cnt", Ast.Desc) ] rows in
  let cnts = List.map (fun b -> Option.get (Option.bind (Binding.find b "cnt") Value.as_int)) sorted in
  check Alcotest.(list int) "secondary desc" [ 9; 5; 2 ] cnts

let test_top_n () =
  let rows = rows_of [ (30, 5); (25, 2); (40, 9); (28, 1) ] in
  check Alcotest.(list int) "top 2 youngest" [ 25; 28 ]
    (ages (Ranking.top_n 2 [ ("age", Ast.Asc) ] rows))

let goals = [ ("age", Ast.Min); ("cnt", Ast.Max) ]

let test_dominates () =
  let a = b_of_list [ ("age", Value.I 25); ("cnt", Value.I 9) ] in
  let b = b_of_list [ ("age", Value.I 30); ("cnt", Value.I 5) ] in
  Alcotest.(check bool) "a dominates b" true (Ranking.dominates goals a b);
  Alcotest.(check bool) "b not dominates a" false (Ranking.dominates goals b a);
  Alcotest.(check bool) "no self domination" false (Ranking.dominates goals a a)

let test_skyline_pareto () =
  (* Young+few-pubs and old+many-pubs are both on the skyline; dominated
     middle points are not. *)
  let rows = rows_of [ (25, 2); (30, 5); (40, 9); (35, 4); (28, 5); (50, 9) ] in
  let sky = Ranking.skyline goals rows in
  let pairs =
    List.map
      (fun b ->
        ( Option.get (Option.bind (Binding.find b "age") Value.as_int),
          Option.get (Option.bind (Binding.find b "cnt") Value.as_int) ))
      sky
    |> List.sort compare
  in
  check Alcotest.(list (pair int int)) "pareto set" [ (25, 2); (28, 5); (40, 9) ] pairs

let test_skyline_matches_bruteforce () =
  (* Property: BNL skyline = brute-force filter. *)
  let rng = Unistore_util.Rng.create 77 in
  for _ = 1 to 20 do
    let rows =
      List.init 40 (fun _ ->
          b_of_list
            [
              ("age", Value.I (Unistore_util.Rng.int rng 20));
              ("cnt", Value.I (Unistore_util.Rng.int rng 20));
            ])
    in
    let sky = Ranking.skyline goals rows |> List.map Binding.fingerprint |> List.sort compare in
    let brute =
      List.filter (fun r -> not (List.exists (fun o -> Ranking.dominates goals o r) rows)) rows
      |> List.map Binding.fingerprint |> List.sort_uniq compare
    in
    (* BNL keeps one representative per duplicate fingerprint group; use
       set comparison. *)
    check Alcotest.(list string) "skyline = brute force" brute (List.sort_uniq compare sky)
  done

let test_skyline_single_dim () =
  let rows = rows_of [ (30, 1); (25, 1); (40, 1) ] in
  let sky = Ranking.skyline [ ("age", Ast.Min) ] rows in
  check Alcotest.(list int) "min only" [ 25 ] (ages sky)

let test_skyline_matches_bnl () =
  (* The presorted-window skyline must agree with the reference BNL
     exactly — same rows, same order — including rows with a missing
     goal dimension (which never dominate nor get dominated). *)
  let rng = Unistore_util.Rng.create 91 in
  for _ = 1 to 20 do
    let rows =
      List.init 60 (fun i ->
          if i mod 7 = 3 then b_of_list [ ("age", Value.I (Unistore_util.Rng.int rng 15)) ]
          else
            b_of_list
              [
                ("age", Value.I (Unistore_util.Rng.int rng 15));
                ("cnt", Value.I (Unistore_util.Rng.int rng 15));
              ])
    in
    let opt = Ranking.skyline goals rows |> List.map Binding.fingerprint in
    let reference = Ranking.skyline_bnl goals rows |> List.map Binding.fingerprint in
    check Alcotest.(list string) "presorted skyline = reference BNL" reference opt
  done

let test_top_n_matches_sort () =
  (* The bounded-heap top-N must equal a stable full sort truncated to
     n, with heavy ties so stability is actually exercised. *)
  let rng = Unistore_util.Rng.create 17 in
  for _ = 1 to 20 do
    let n = Unistore_util.Rng.int rng 12 in
    let rows =
      List.init 50 (fun _ ->
          b_of_list
            [
              ("age", Value.I (Unistore_util.Rng.int rng 6));
              ("cnt", Value.I (Unistore_util.Rng.int rng 6));
            ])
    in
    let keys = [ ("age", Ast.Asc); ("cnt", Ast.Desc) ] in
    let expect =
      List.filteri (fun i _ -> i < n) (Ranking.order_by keys rows)
      |> List.map Binding.fingerprint
    in
    let got = Ranking.top_n n keys rows |> List.map Binding.fingerprint in
    check Alcotest.(list string) "heap top-n = sort then truncate" expect got
  done

(* ------------------------------------------------------------------ *)
(* Cost model + optimizer (synthetic stats) *)

let synthetic_stats =
  (* 1000 authors-ish triples: name (distinct), age (45 distinct), ... *)
  let mk count distinct lo hi string_valued =
    { Qstats.count; distinct; lo; hi; string_valued }
  in
  {
    Qstats.total_triples = 3000;
    distinct_oids = 500;
    attrs =
      [
        ("age", mk 500 45 (Some (Value.I 24)) (Some (Value.I 68)) false);
        ("name", mk 500 495 (Some (Value.S "Aaron")) (Some (Value.S "Zoe")) true);
        ("num_of_pubs", mk 500 30 (Some (Value.I 1)) (Some (Value.I 40)) false);
        ("title", mk 1500 1400 None None true);
      ];
  }

let env =
  {
    Cost.peers = 256;
    depth = 8;
    replication = 2;
    expected_latency = 50.0;
    batched_probes = false;
    gram_pruning = true;
    topn_budget = true;
  }

let test_cost_lookup_cheaper_than_scan () =
  let lookup = Cost.estimate_access env synthetic_stats (Cost.AAttrValue ("name", Value.S "Bob")) in
  let scan = Cost.estimate_access env synthetic_stats (Cost.AAttrAll "name") in
  let flood = Cost.estimate_access env synthetic_stats Cost.ABroadcast in
  Alcotest.(check bool) "lookup < scan" true (lookup.Cost.messages < scan.Cost.messages);
  Alcotest.(check bool) "scan < flood" true (scan.Cost.messages < flood.Cost.messages)

let test_cost_range_scales_with_selectivity () =
  let narrow =
    Cost.estimate_access env synthetic_stats
      (Cost.AAttrRange ("age", Some (Value.I 30), Some (Value.I 31)))
  in
  let wide =
    Cost.estimate_access env synthetic_stats
      (Cost.AAttrRange ("age", Some (Value.I 24), Some (Value.I 68)))
  in
  Alcotest.(check bool) "narrow cheaper" true (narrow.Cost.messages <= wide.Cost.messages);
  Alcotest.(check bool) "narrow fewer rows" true (narrow.Cost.cardinality < wide.Cost.cardinality)

let test_cost_logarithmic_in_peers () =
  let small = { env with Cost.peers = 64; depth = 6 } in
  let large = { env with Cost.peers = 4096; depth = 12 } in
  let m n = (Cost.estimate_access n synthetic_stats (Cost.AOid "a1")).Cost.messages in
  Alcotest.(check bool) "64x peers ~ 2x messages" true (m large /. m small < 3.0)

let cmap_of src =
  let q = Parser.parse_exn src in
  (Unistore_vql.Algebra.var_constraints q.Ast.filters, q)

let test_optimizer_picks_av_lookup () =
  let _, q = cmap_of "SELECT ?a WHERE { (?a,'name',?n) FILTER ?n = 'Bob' }" in
  let plan = Optimizer.plan env synthetic_stats ~qgrams:true q in
  match (List.hd plan.Physical.steps).Physical.access with
  | Cost.AAttrValue ("name", Value.S "Bob") -> ()
  | a -> Alcotest.failf "expected av-lookup, got %a" Cost.pp_access a

let test_optimizer_picks_range () =
  let _, q = cmap_of "SELECT ?a WHERE { (?a,'age',?v) FILTER ?v >= 30 AND ?v < 40 }" in
  let plan = Optimizer.plan env synthetic_stats ~qgrams:true q in
  match (List.hd plan.Physical.steps).Physical.access with
  | Cost.AAttrRange ("age", Some (Value.I 30), Some (Value.I 40)) -> ()
  | a -> Alcotest.failf "expected range, got %a" Cost.pp_access a

let test_optimizer_picks_qgram_sim () =
  let _, q = cmap_of "SELECT ?a WHERE { (?a,'title',?t) FILTER edist(?t,'similarity search')<2 }" in
  let plan = Optimizer.plan env synthetic_stats ~qgrams:true q in
  (match (List.hd plan.Physical.steps).Physical.access with
  | Cost.ASim (Some "title", "similarity search", 1) -> ()
  | a -> Alcotest.failf "expected qgram sim, got %a" Cost.pp_access a);
  (* With the q-gram index disabled, it must not be chosen. *)
  let plan2 = Optimizer.plan env synthetic_stats ~qgrams:false q in
  match (List.hd plan2.Physical.steps).Physical.access with
  | Cost.ASim _ -> Alcotest.fail "sim access chosen without index"
  | _ -> ()

let test_optimizer_picks_substring () =
  let _, q = cmap_of "SELECT ?a WHERE { (?a,'title',?t) FILTER contains(?t,'skyline') }" in
  let plan = Optimizer.plan env synthetic_stats ~qgrams:true q in
  (match (List.hd plan.Physical.steps).Physical.access with
  | Cost.ASubstring (Some "title", "skyline") -> ()
  | a -> Alcotest.failf "expected substring access, got %a" Cost.pp_access a);
  (* Without the q-gram index or with a too-short pattern: no substring
     access. *)
  let plan2 = Optimizer.plan env synthetic_stats ~qgrams:false q in
  (match (List.hd plan2.Physical.steps).Physical.access with
  | Cost.ASubstring _ -> Alcotest.fail "substring access without index"
  | _ -> ());
  let _, q3 = cmap_of "SELECT ?a WHERE { (?a,'title',?t) FILTER contains(?t,'ab') }" in
  let plan3 = Optimizer.plan env synthetic_stats ~qgrams:true q3 in
  match (List.hd plan3.Physical.steps).Physical.access with
  | Cost.ASubstring _ -> Alcotest.fail "substring access for short pattern"
  | _ -> ()

let test_optimizer_picks_topn_traversal () =
  let _, q = cmap_of "SELECT ?v WHERE { (?a,'age',?v) } ORDER BY ?v ASC LIMIT 3" in
  let plan = Optimizer.plan env synthetic_stats ~qgrams:true q in
  (match (List.hd plan.Physical.steps).Physical.access with
  | Cost.ATopN ("age", 3) -> ()
  | a -> Alcotest.failf "expected topn traversal, got %a" Cost.pp_access a);
  (* Not sound with filters, descending order, or joins. *)
  let unsound =
    [
      "SELECT ?v WHERE { (?a,'age',?v) FILTER ?v != 30 } ORDER BY ?v ASC LIMIT 3";
      "SELECT ?v WHERE { (?a,'age',?v) } ORDER BY ?v DESC LIMIT 3";
      "SELECT ?v WHERE { (?a,'age',?v) (?a,'name',?n) } ORDER BY ?v ASC LIMIT 3";
    ]
  in
  List.iter
    (fun src ->
      let _, q = cmap_of src in
      let plan = Optimizer.plan env synthetic_stats ~qgrams:true q in
      List.iter
        (fun (s : Physical.step) ->
          match s.Physical.access with
          | Cost.ATopN _ -> Alcotest.failf "unsound topn for %s" src
          | _ -> ())
        plan.Physical.steps)
    unsound

let test_optimizer_starts_with_most_selective () =
  let _, q =
    cmap_of
      "SELECT ?n WHERE { (?a,'name',?n) (?a,'age',?v) (?a,'num_of_pubs',?c) FILTER ?n = 'Bob' }"
  in
  let plan = Optimizer.plan env synthetic_stats ~qgrams:true q in
  (match (List.hd plan.Physical.steps).Physical.access with
  | Cost.AAttrValue ("name", _) -> ()
  | a -> Alcotest.failf "expected to start from name=Bob, got %a" Cost.pp_access a);
  (* Later steps should be bind-joins (selective left side). *)
  let later = List.tl plan.Physical.steps in
  Alcotest.(check bool) "bind-joins follow" true
    (List.for_all (fun (s : Physical.step) -> s.Physical.bindjoin) later)

let test_optimizer_attaches_filters () =
  let _, q =
    cmap_of "SELECT ?n WHERE { (?a,'name',?n) (?a,'age',?v) FILTER ?v > 30 FILTER ?n != 'x' }"
  in
  let plan = Optimizer.plan env synthetic_stats ~qgrams:true q in
  let total_residuals =
    List.fold_left (fun acc (s : Physical.step) -> acc + List.length s.Physical.residual) 0
      plan.Physical.steps
  in
  check Alcotest.int "both filters attached to steps" 2 total_residuals;
  check Alcotest.int "no post filters" 0 (List.length plan.Physical.post_filters)

let test_optimizer_no_constraint_scans_attr () =
  let _, q = cmap_of "SELECT ?v WHERE { (?a,'age',?v) }" in
  let plan = Optimizer.plan env synthetic_stats ~qgrams:true q in
  match (List.hd plan.Physical.steps).Physical.access with
  | Cost.AAttrAll "age" -> ()
  | a -> Alcotest.failf "expected attr scan, got %a" Cost.pp_access a

let test_optimizer_value_lookup_for_var_attr () =
  let _, q = cmap_of "SELECT ?attr WHERE { (?a,?attr,'ICDE') }" in
  let plan = Optimizer.plan env synthetic_stats ~qgrams:true q in
  match (List.hd plan.Physical.steps).Physical.access with
  | Cost.AValue (Value.S "ICDE") -> ()
  | a -> Alcotest.failf "expected v-lookup, got %a" Cost.pp_access a

let test_access_candidates_sorted () =
  let cmap, q = cmap_of "SELECT ?v WHERE { (?a,'age',?v) FILTER ?v >= 30 }" in
  let cands = Optimizer.access_candidates env synthetic_stats ~qgrams:true cmap (List.hd q.Ast.patterns) in
  Alcotest.(check bool) "at least 2 candidates" true (List.length cands >= 2);
  let objectives = List.map (fun (_, e) -> Cost.objective e) cands in
  let sorted = List.sort Float.compare objectives in
  check Alcotest.(list (float 1e-9)) "sorted by objective" sorted objectives

(* ------------------------------------------------------------------ *)
(* Postprocess (exported for UNION combination) *)

module Exec = Unistore_qproc.Exec

let mk_post ?(order = None) ?(projection = None) ?(distinct = false) ?(limit = None) () =
  {
    Physical.steps = [];
    post_filters = [];
    order;
    projection;
    distinct;
    limit;
    expansions = [];
    total_est = { Cost.messages = 0.0; latency = 0.0; cardinality = 0.0 };
    branches = [];
  }

let test_postprocess_pipeline () =
  let rows = rows_of [ (30, 5); (25, 2); (40, 9); (25, 2); (28, 1) ] in
  (* order + limit = top-n *)
  let out =
    Exec.postprocess (mk_post ~order:(Some (Ast.OrderBy [ ("age", Ast.Asc) ])) ~limit:(Some 2) ()) rows
  in
  check Alcotest.(list int) "top2" [ 25; 25 ] (ages out);
  (* distinct after projection *)
  let out = Exec.postprocess (mk_post ~projection:(Some [ "age" ]) ~distinct:true ()) rows in
  check Alcotest.int "distinct ages" 4 (List.length out);
  (* skyline + limit *)
  let out =
    Exec.postprocess
      (mk_post ~order:(Some (Ast.Skyline [ ("age", Ast.Min); ("cnt", Ast.Max) ])) ~limit:(Some 1) ())
      rows
  in
  check Alcotest.int "skyline truncated" 1 (List.length out);
  (* no clauses = identity *)
  let out = Exec.postprocess (mk_post ()) rows in
  check Alcotest.int "identity" (List.length rows) (List.length out)

let () =
  Alcotest.run "unistore_qproc"
    [
      ( "binding",
        [
          Alcotest.test_case "bind consistency" `Quick test_binding_bind_consistency;
          Alcotest.test_case "match triple" `Quick test_binding_match_triple;
          Alcotest.test_case "repeated variable" `Quick test_binding_match_repeated_var;
          Alcotest.test_case "compatible merge" `Quick test_binding_compatible;
          Alcotest.test_case "join key / project" `Quick test_binding_join_key_project;
          Alcotest.test_case "fingerprint" `Quick test_binding_fingerprint;
        ] );
      ( "ranking",
        [
          Alcotest.test_case "order by" `Quick test_order_by;
          Alcotest.test_case "order by secondary" `Quick test_order_by_secondary;
          Alcotest.test_case "top-n" `Quick test_top_n;
          Alcotest.test_case "dominance" `Quick test_dominates;
          Alcotest.test_case "skyline pareto" `Quick test_skyline_pareto;
          Alcotest.test_case "skyline = brute force" `Quick test_skyline_matches_bruteforce;
          Alcotest.test_case "skyline single dim" `Quick test_skyline_single_dim;
          Alcotest.test_case "presorted skyline = reference bnl" `Quick test_skyline_matches_bnl;
          Alcotest.test_case "heap top-n = sort" `Quick test_top_n_matches_sort;
        ] );
      ( "cost",
        [
          Alcotest.test_case "lookup < scan < flood" `Quick test_cost_lookup_cheaper_than_scan;
          Alcotest.test_case "range selectivity" `Quick test_cost_range_scales_with_selectivity;
          Alcotest.test_case "logarithmic scaling" `Quick test_cost_logarithmic_in_peers;
        ] );
      ( "postprocess",
        [ Alcotest.test_case "pipeline combinations" `Quick test_postprocess_pipeline ] );
      ( "optimizer",
        [
          Alcotest.test_case "picks av-lookup" `Quick test_optimizer_picks_av_lookup;
          Alcotest.test_case "picks range" `Quick test_optimizer_picks_range;
          Alcotest.test_case "picks qgram sim" `Quick test_optimizer_picks_qgram_sim;
          Alcotest.test_case "picks substring" `Quick test_optimizer_picks_substring;
          Alcotest.test_case "picks topn traversal" `Quick test_optimizer_picks_topn_traversal;
          Alcotest.test_case "starts most selective" `Quick test_optimizer_starts_with_most_selective;
          Alcotest.test_case "attaches filters" `Quick test_optimizer_attaches_filters;
          Alcotest.test_case "attr scan fallback" `Quick test_optimizer_no_constraint_scans_attr;
          Alcotest.test_case "v-lookup for var attr" `Quick test_optimizer_value_lookup_for_var_attr;
          Alcotest.test_case "candidates sorted" `Quick test_access_candidates_sorted;
        ] );
    ]
