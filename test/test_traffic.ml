(* Heavy-traffic machinery tests: the latency-model distributions, the
   per-peer service-queue model in Net (FIFO order, seeded determinism,
   Little's-law sanity), the open-loop traffic engine (schedules,
   arrival processes, Zipf hot keys, windowed accounting) and the
   facade-level guarantee that a traffic run replays byte-identically —
   even with fault injection active. *)

module Rng = Unistore_util.Rng
module Stats = Unistore_util.Stats
module Sim = Unistore_sim.Sim
module Latency = Unistore_sim.Latency
module Net = Unistore_sim.Net
module Engine = Unistore_traffic.Engine
module Schedule = Unistore_traffic.Schedule
module Arrivals = Unistore_traffic.Arrivals
module Hotkeys = Unistore_traffic.Hotkeys
module Publications = Unistore_workload.Publications

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_close ~tol name expected actual =
  let rel = Float.abs (actual -. expected) /. Float.max 1e-9 (Float.abs expected) in
  if rel > tol then
    Alcotest.failf "%s: expected ~%.4f, got %.4f (rel err %.3f > %.3f)" name expected actual
      rel tol

(* ------------------------------------------------------------------ *)
(* Latency distributions                                               *)

let samples model ~n ~seed =
  let rng = Rng.create seed in
  let lat = Latency.create model ~n:16 ~rng in
  List.init n (fun i -> Latency.sample lat ~src:(i mod 16) ~dst:((i + 7) mod 16))

let test_latency_constant () =
  List.iter
    (fun d -> Alcotest.check (Alcotest.float 0.0) "constant sample" 5.5 d)
    (samples (Latency.Constant 5.5) ~n:100 ~seed:1);
  let rng = Rng.create 2 in
  let lat = Latency.create (Latency.Constant 5.5) ~n:4 ~rng in
  Alcotest.check (Alcotest.float 0.0) "constant expected" 5.5 (Latency.expected lat)

let test_latency_uniform () =
  let xs = samples (Latency.Uniform (2.0, 6.0)) ~n:20_000 ~seed:3 in
  List.iter
    (fun x -> if x < 2.0 || x > 6.0 then Alcotest.failf "uniform sample %.3f out of [2,6]" x)
    xs;
  check_close ~tol:0.05 "uniform empirical mean" 4.0 (Stats.mean xs)

let test_latency_lan () =
  let xs = samples Latency.Lan ~n:20_000 ~seed:4 in
  List.iter
    (fun x -> if x < 0.5 || x > 2.0 then Alcotest.failf "lan sample %.3f out of [0.5,2]" x)
    xs;
  check_close ~tol:0.05 "lan empirical mean" 1.25 (Stats.mean xs);
  let rng = Rng.create 5 in
  let lat = Latency.create Latency.Lan ~n:4 ~rng in
  Alcotest.check (Alcotest.float 1e-9) "lan expected" 1.25 (Latency.expected lat)

let test_latency_planetlab () =
  (* Expected one-way latency: 20ms floor + mean unit-square pair
     distance (~0.5214) * 140ms, times the log-normal jitter mean
     exp(sigma^2/2). The empirical mean over random peer pairs converges
     loosely (the 16 coords are one draw), so the tolerance is wide. *)
  let rng = Rng.create 6 in
  let lat = Latency.create Latency.Planetlab ~n:64 ~rng in
  let expected = (20.0 +. (0.5214 *. 140.0)) *. exp (0.35 *. 0.35 /. 2.0) in
  Alcotest.check (Alcotest.float 1e-6) "planetlab expected formula" expected
    (Latency.expected lat);
  let xs =
    List.init 40_000 (fun i -> Latency.sample lat ~src:(i mod 64) ~dst:(i * 7 mod 64))
  in
  List.iter (fun x -> if x < 0.0 then Alcotest.failf "negative latency %.3f" x) xs;
  check_close ~tol:0.25 "planetlab empirical mean" expected (Stats.mean xs)

let test_latency_determinism () =
  List.iter
    (fun model ->
      let a = samples model ~n:500 ~seed:42 in
      let b = samples model ~n:500 ~seed:42 in
      if not (List.for_all2 feq a b) then Alcotest.fail "same seed, different latency stream")
    [ Latency.Constant 3.0; Latency.Uniform (1.0, 9.0); Latency.Lan; Latency.Planetlab ]

(* ------------------------------------------------------------------ *)
(* The per-peer service queue in Net                                   *)

(* A two-peer rig with constant link latency and a service time at peer
   1; returns the handler-invocation timestamps at peer 1 in order. *)
let queue_rig ~seed ~svc_ms ~sends =
  let sim = Sim.create () in
  let rng = Rng.create seed in
  let latency = Latency.create (Latency.Constant 1.0) ~n:2 ~rng in
  let net = Net.create sim ~latency ~rng () in
  let deliveries = ref [] in
  Net.register net 0 (fun ~src:_ (_ : int) -> ());
  Net.register net 1 (fun ~src:_ (tag : int) ->
      deliveries := (tag, Sim.now sim) :: !deliveries);
  Net.set_service net 1 ~ms:svc_ms;
  List.iter (fun tag -> Net.send net ~src:0 ~dst:1 tag) sends;
  Sim.run_all sim;
  List.rev !deliveries

let test_queue_fifo_spacing () =
  (* Five messages sent at t=0 all arrive at t=1 (constant link) and
     then serialize: handler calls at 3,5,7,9,11 in send order. *)
  let ds = queue_rig ~seed:7 ~svc_ms:2.0 ~sends:[ 10; 11; 12; 13; 14 ] in
  let expect = [ (10, 3.0); (11, 5.0); (12, 7.0); (13, 9.0); (14, 11.0) ] in
  List.iter2
    (fun (etag, et) (tag, t) ->
      Alcotest.(check int) "fifo order" etag tag;
      Alcotest.check (Alcotest.float 1e-9) "service slot time" et t)
    expect ds

let test_queue_disabled_is_transparent () =
  (* svc_ms = 0: the classic infinite-capacity peer — all deliveries at
     link latency, no serialization. *)
  let ds = queue_rig ~seed:8 ~svc_ms:0.0 ~sends:[ 1; 2; 3 ] in
  List.iter (fun (_, t) -> Alcotest.check (Alcotest.float 1e-9) "no wait" 1.0 t) ds

let test_queue_determinism () =
  let sends = List.init 200 (fun i -> i) in
  let a = queue_rig ~seed:99 ~svc_ms:1.5 ~sends in
  let b = queue_rig ~seed:99 ~svc_ms:1.5 ~sends in
  if not (List.for_all2 (fun (ta, xa) (tb, xb) -> ta = tb && feq xa xb) a b) then
    Alcotest.fail "same seed, different queue schedule"

let test_queue_littles_law () =
  (* Open-loop Poisson arrivals (rate 0.4/ms) into a single server with
     a 2ms deterministic service time (rho = 0.8, M/D/1). Little's law
     ties the time-average number in system L to the arrival rate and
     the mean sojourn W: L = lambda * W. Both sides are measured
     independently — L by sampling [queue_depth] on a 1ms clock, W from
     per-message send-to-handler times (minus the 0 link latency) — so
     agreement within sampling noise is a real consistency check of the
     queue bookkeeping, not a tautology. *)
  let sim = Sim.create () in
  let rng = Rng.create 1234 in
  let latency = Latency.create (Latency.Constant 0.0) ~n:2 ~rng in
  let net = Net.create sim ~latency ~rng () in
  let arrival_rng = Rng.split rng in
  let horizon = 30_000.0 in
  let sojourns = ref [] in
  let sent_at : (int, float) Hashtbl.t = Hashtbl.create 1024 in
  Net.register net 0 (fun ~src:_ (_ : int) -> ());
  Net.register net 1 (fun ~src:_ (tag : int) ->
      match Hashtbl.find_opt sent_at tag with
      | Some t0 -> sojourns := (Sim.now sim -. t0) :: !sojourns
      | None -> Alcotest.fail "delivery for a message never sent");
  Net.set_service net 1 ~ms:2.0;
  let n_sent = ref 0 in
  let rec arrive () =
    if Sim.now sim < horizon then begin
      let tag = !n_sent in
      incr n_sent;
      Hashtbl.replace sent_at tag (Sim.now sim);
      Net.send net ~src:0 ~dst:1 tag;
      Sim.schedule sim ~delay:(Rng.exponential arrival_rng ~mean:2.5) arrive
    end
  in
  let depth_samples = ref [] in
  let rec probe () =
    if Sim.now sim < horizon then begin
      depth_samples := float_of_int (Net.queue_depth net 1) :: !depth_samples;
      Sim.schedule sim ~delay:1.0 probe
    end
  in
  Sim.schedule sim ~delay:0.0 arrive;
  Sim.schedule sim ~delay:0.5 probe;
  Sim.run_all sim;
  let lambda = float_of_int !n_sent /. horizon in
  let w = Stats.mean !sojourns in
  let l = Stats.mean !depth_samples in
  check_close ~tol:0.3 "Little's law: L vs lambda*W" (lambda *. w) l;
  (* And the M/D/1 prediction for the mean sojourn: s + rho*s/(2(1-rho)). *)
  let rho = lambda *. 2.0 in
  check_close ~tol:0.3 "M/D/1 mean sojourn" (2.0 +. (rho *. 2.0 /. (2.0 *. (1.0 -. rho)))) w

(* ------------------------------------------------------------------ *)
(* Schedules, arrivals, hot keys                                       *)

let test_schedule_factors () =
  let f = Alcotest.float 1e-9 in
  Alcotest.check f "steady" 1.0 (Schedule.factor Schedule.Steady ~t:123.0);
  let flash = Schedule.Flash { peak = 9.0; at_ms = 100.0; ramp_ms = 50.0; hold_ms = 200.0 } in
  Alcotest.check f "flash before" 1.0 (Schedule.factor flash ~t:99.0);
  Alcotest.check f "flash mid-ramp" 5.0 (Schedule.factor flash ~t:125.0);
  Alcotest.check f "flash hold" 9.0 (Schedule.factor flash ~t:200.0);
  Alcotest.check f "flash mid-rampdown" 5.0 (Schedule.factor flash ~t:375.0);
  Alcotest.check f "flash after" 1.0 (Schedule.factor flash ~t:401.0);
  let diurnal = Schedule.Diurnal { period_ms = 1000.0; trough = 0.4 } in
  Alcotest.check f "diurnal start at midpoint" 0.7 (Schedule.factor diurnal ~t:0.0);
  Alcotest.check f "diurnal peak" 1.0 (Schedule.factor diurnal ~t:250.0);
  Alcotest.check f "diurnal trough" 0.4 (Schedule.factor diurnal ~t:750.0)

let test_arrivals () =
  let rng = Rng.create 11 in
  (* Deterministic: the gap is exactly 1/rate and consumes no RNG. *)
  let g1 = Arrivals.gap Arrivals.Deterministic rng ~rate_per_ms:0.25 in
  Alcotest.check (Alcotest.float 1e-9) "deterministic gap" 4.0 g1;
  (* Poisson: exponential gaps with mean 1/rate. *)
  let gaps = List.init 40_000 (fun _ -> Arrivals.gap Arrivals.Poisson rng ~rate_per_ms:0.5) in
  List.iter (fun g -> if g < 0.0 then Alcotest.fail "negative gap") gaps;
  check_close ~tol:0.05 "poisson mean gap" 2.0 (Stats.mean gaps);
  (match Arrivals.gap Arrivals.Poisson rng ~rate_per_ms:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rate 0 accepted");
  (* Same seed, same gap stream. *)
  let stream seed =
    let rng = Rng.create seed in
    List.init 100 (fun _ -> Arrivals.gap Arrivals.Poisson rng ~rate_per_ms:1.0)
  in
  if not (List.for_all2 feq (stream 5) (stream 5)) then
    Alcotest.fail "same seed, different arrival stream"

let test_hotkeys () =
  let keys = [| "delta"; "alpha"; "charlie"; "bravo" |] in
  let hk = Hotkeys.create ~keys ~s:1.2 in
  Alcotest.(check int) "population size" 4 (Hotkeys.n hk);
  let rng = Rng.create 21 in
  let counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
  for _ = 1 to 20_000 do
    let k = Hotkeys.sample hk rng in
    if not (Array.exists (String.equal k) keys) then Alcotest.failf "alien key %s" k;
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let count k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  (* Ranking is over the sorted key population: "alpha" is rank 1. *)
  if count "alpha" <= count "bravo" || count "bravo" <= count "delta" then
    Alcotest.failf "zipf ranking not lexicographic: alpha=%d bravo=%d delta=%d" (count "alpha")
      (count "bravo") (count "delta");
  (* Head mass is monotone and normalizes to 1 over the whole set. *)
  if Hotkeys.head_mass hk 1 >= Hotkeys.head_mass hk 3 then Alcotest.fail "head mass not monotone";
  check_close ~tol:1e-6 "head mass totals 1" 1.0 (Hotkeys.head_mass hk 4);
  (* Same seed, same key stream. *)
  let stream seed =
    let rng = Rng.create seed in
    List.init 200 (fun _ -> Hotkeys.sample hk rng)
  in
  if not (List.for_all2 String.equal (stream 77) (stream 77)) then
    Alcotest.fail "same seed, different key stream"

(* ------------------------------------------------------------------ *)
(* The open-loop engine                                                *)

(* Drive the engine against a stub system that completes every request
   after a fixed simulated delay; returns the issue log and report. *)
let engine_run ?(completion_delay = 5.0) ?(duration = 2_000.0) ?(warmup = 200.0) ~seed () =
  let sim = Sim.create () in
  let issued = ref [] in
  let issue ~seq ~origin ~key ~k =
    issued := (seq, origin, key, Sim.now sim) :: !issued;
    Sim.schedule sim ~delay:completion_delay (fun () -> k { Engine.ok = true; items = 1 })
  in
  let cfg =
    {
      Engine.default with
      Engine.rate_per_s = 300.0;
      duration_ms = duration;
      warmup_ms = warmup;
      seed;
      control_interval_ms = 0.0;
    }
  in
  let report =
    Engine.run ~sim ~origins:[| 3; 5; 8 |]
      ~hotkeys:(Hotkeys.create ~keys:[| "a"; "b"; "c"; "d" |] ~s:1.0)
      ~issue cfg
  in
  (List.rev !issued, report)

let test_engine_offered_stream_deterministic () =
  (* The offered workload — seq, origin, key, instant — is a pure
     function of the engine seed: byte-identical across runs, and
     independent of how fast the system answers (that is what makes
     two-arm comparisons sound). *)
  let log1, r1 = engine_run ~seed:31 () in
  let log2, r2 = engine_run ~seed:31 () in
  let log3, _ = engine_run ~seed:31 ~completion_delay:500.0 () in
  Alcotest.(check int) "same offered count" r1.Engine.offered r2.Engine.offered;
  let same (s1, o1, k1, t1) (s2, o2, k2, t2) =
    s1 = s2 && o1 = o2 && String.equal k1 k2 && feq t1 t2
  in
  if not (List.for_all2 same log1 log2) then Alcotest.fail "same seed, different request stream";
  if not (List.for_all2 same log1 log3) then
    Alcotest.fail "request stream depends on system speed (closed-loop leak)";
  let log4, _ = engine_run ~seed:32 () in
  if List.length log4 = List.length log1 && List.for_all2 same log1 log4 then
    Alcotest.fail "different seeds replayed the same stream"

let test_engine_windowed_accounting () =
  let _, r = engine_run ~seed:33 ~completion_delay:5.0 () in
  Alcotest.(check int) "no giveups" 0 r.Engine.giveups;
  if r.Engine.measured >= r.Engine.offered then
    Alcotest.fail "warmup requests leaked into the measurement window";
  Alcotest.(check int) "every measured request completed" r.Engine.measured r.Engine.ok;
  if r.Engine.served_in_window > r.Engine.ok then Alcotest.fail "in-window exceeds completions";
  Alcotest.check (Alcotest.float 1e-6) "fixed completion delay is every percentile" 5.0
    r.Engine.lat_p50_ms;
  Alcotest.check (Alcotest.float 1e-6) "p99 of a constant" 5.0 r.Engine.lat_p99_ms;
  (* A system slower than the whole stream serves nothing in-window. *)
  let _, late = engine_run ~seed:33 ~completion_delay:1.0e6 () in
  Alcotest.(check int) "all completions landed after the stream" 0 late.Engine.served_in_window;
  Alcotest.check (Alcotest.float 1e-9) "throughput is windowed" 0.0 late.Engine.throughput_qps;
  Alcotest.(check int) "late is not lost" late.Engine.measured late.Engine.ok

(* ------------------------------------------------------------------ *)
(* Facade: byte-identical traffic replay, with and without faults      *)

let build_store () =
  let rng = Rng.create 43 in
  let ds =
    Publications.generate rng { Publications.default_params with n_authors = 12; typo_rate = 0.1 }
  in
  let store =
    Unistore.create
      ~sample_keys:(Publications.sample_keys ds)
      { Unistore.default_config with peers = 32; seed = 42 }
  in
  ignore (Unistore.load store ds.Publications.tuples);
  Unistore.set_stats_of_triples store ds.Publications.triples;
  Unistore.settle store;
  (store, List.sort_uniq String.compare (Publications.sample_keys ds))

let traffic_cfg =
  {
    Unistore.default_traffic_config with
    Unistore.arrival_rate = 60.0;
    peak = 4.0;
    traffic_duration_ms = 4_000.0;
    traffic_warmup_ms = 500.0;
    service_ms = 1.0;
  }

let run_replay ~faults () =
  let store, keys = build_store () in
  if faults then begin
    let spec =
      Unistore.Faults.spec ~seed:7
        ~churn:(Unistore.Faults.churn_spec ~interval_ms:50.0 ~down_ms:40.0 ~rate:0.05 ())
        ~protected:[ 0 ] ()
    in
    match Unistore.inject_faults store spec with
    | Some _ -> ()
    | None -> Alcotest.fail "fault injection refused"
  end;
  Unistore.reset_metrics store;
  Unistore.run_traffic store ~keys traffic_cfg

let check_replay ~faults () =
  let a = run_replay ~faults () in
  let b = run_replay ~faults () in
  Alcotest.(check string) "results digest replays byte-identically" a.Unistore.results_digest
    b.Unistore.results_digest;
  Alcotest.(check int) "offered replays" a.Unistore.engine.Unistore.Traffic.offered
    b.Unistore.engine.Unistore.Traffic.offered;
  Alcotest.(check int) "ok replays" a.Unistore.engine.Unistore.Traffic.ok
    b.Unistore.engine.Unistore.Traffic.ok;
  Alcotest.(check int) "queue.msgs replays" a.Unistore.queue_msgs b.Unistore.queue_msgs;
  Alcotest.(check int) "retries replay" a.Unistore.retries b.Unistore.retries;
  Alcotest.check (Alcotest.float 1e-9) "p99 replays" a.Unistore.engine.Unistore.Traffic.lat_p99_ms
    b.Unistore.engine.Unistore.Traffic.lat_p99_ms

let test_replay_fault_free () = check_replay ~faults:false ()

let test_replay_with_faults () =
  (* The determinism contract holds under fault injection too: churn
     waves, the queueing model and the balancer all draw from seeded
     streams, so a faulted traffic run replays byte-for-byte. *)
  check_replay ~faults:true ()

let () =
  Alcotest.run "traffic"
    [
      ( "latency",
        [
          Alcotest.test_case "constant" `Quick test_latency_constant;
          Alcotest.test_case "uniform range and mean" `Quick test_latency_uniform;
          Alcotest.test_case "lan range and mean" `Quick test_latency_lan;
          Alcotest.test_case "planetlab expectation" `Quick test_latency_planetlab;
          Alcotest.test_case "seeded determinism" `Quick test_latency_determinism;
        ] );
      ( "queue",
        [
          Alcotest.test_case "fifo spacing" `Quick test_queue_fifo_spacing;
          Alcotest.test_case "svc=0 transparent" `Quick test_queue_disabled_is_transparent;
          Alcotest.test_case "seeded determinism" `Quick test_queue_determinism;
          Alcotest.test_case "Little's law (M/D/1)" `Quick test_queue_littles_law;
        ] );
      ( "generator",
        [
          Alcotest.test_case "schedule factors" `Quick test_schedule_factors;
          Alcotest.test_case "arrival processes" `Quick test_arrivals;
          Alcotest.test_case "zipf hot keys" `Quick test_hotkeys;
        ] );
      ( "engine",
        [
          Alcotest.test_case "offered stream deterministic" `Quick
            test_engine_offered_stream_deterministic;
          Alcotest.test_case "windowed accounting" `Quick test_engine_windowed_accounting;
        ] );
      ( "replay",
        [
          Alcotest.test_case "byte-identical, fault-free" `Quick test_replay_fault_free;
          Alcotest.test_case "byte-identical, faults active" `Quick test_replay_with_faults;
        ] );
    ]
