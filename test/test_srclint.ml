(* Tests for the source-level determinism & protocol-exhaustiveness
   linter (Unistore_analysis.Srclint): one seeded-defect fixture per
   rule family, the matching clean fixture, suppression via
   [(* srclint: allow <rule> *)], the protocol cross-checks against a
   toy protocol, and — the point of the exercise — a meta-test that the
   repo's own lib/ and bin/ trees lint clean. *)

module Srclint = Unistore_analysis.Srclint
module Protocol = Unistore_analysis.Protocol
module D = Unistore_analysis.Diagnostic

let codes ds = List.map (fun (d : D.t) -> d.D.code) ds
let has code ds = List.exists (fun (d : D.t) -> String.equal d.D.code code) ds

let check_has what code ds =
  if not (has code ds) then
    Alcotest.failf "%s: expected a %S diagnostic, got [%s]" what code
      (String.concat "; " (codes ds))

let check_clean what ds =
  if ds <> [] then
    Alcotest.failf "%s: expected no diagnostics, got [%s]" what (String.concat "; " (codes ds))

let lint ?(path = "lib/fixture/fixture.ml") ?rules src = Srclint.lint_source ?rules ~path src

(* ------------------------------------------------------------------ *)
(* Rule 1: unordered-iteration *)

let unordered_defect () =
  check_has "escaping fold" "unordered-iteration"
    (lint "let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []");
  check_has "side-effecting iter" "unordered-iteration"
    (lint "let dump tbl = Hashtbl.iter (fun k v -> print_endline (k ^ v)) tbl");
  check_has "qualified Stdlib fold" "unordered-iteration"
    (lint "let keys tbl = Stdlib.Hashtbl.fold (fun k _ acc -> k :: acc) tbl []")

let unordered_sanctioned () =
  check_clean "fold piped into sort"
    (lint "let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare");
  check_clean "fold as sort argument"
    (lint "let keys tbl = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])");
  check_clean "fold under @@ sort"
    (lint "let keys tbl = List.sort compare @@ Hashtbl.fold (fun k _ acc -> k :: acc) tbl []");
  check_clean "fold into sort_uniq"
    (lint
       "let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort_uniq compare")

let unordered_suppressed () =
  check_clean "allow comment on the line"
    (lint
       "let n tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0 (* srclint: allow \
        unordered-iteration *)");
  (* The annotation only covers its own line. *)
  check_has "allow comment on another line" "unordered-iteration"
    (lint
       "(* srclint: allow unordered-iteration *)\n\
        let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []")

(* ------------------------------------------------------------------ *)
(* Rule 2: ambient-effects *)

let ambient_defect () =
  check_has "Random" "ambient-effects" (lint "let jitter () = Random.float 1.0");
  check_has "Sys.time" "ambient-effects" (lint "let t () = Sys.time ()");
  check_has "Unix.gettimeofday" "ambient-effects" (lint "let now () = Unix.gettimeofday ()")

let ambient_exempt_and_clean () =
  (* The seeded-RNG module itself is the one place ambient randomness
     is allowed to live. *)
  check_clean "rng.ml is exempt" (lint ~path:"lib/util/rng.ml" "let x () = Random.int 10");
  check_clean "seeded flows are fine" (lint "let x rng = Rng.float rng 1.0");
  check_clean "suppressed"
    (lint "let x () = Random.int 10 (* srclint: allow ambient-effects *)")

(* ------------------------------------------------------------------ *)
(* Rule 3: polymorphic-compare *)

let polycmp_defect () =
  check_has "float equality" "polymorphic-compare" (lint "let eq x = x = 1.0");
  check_has "float inequality" "polymorphic-compare" (lint "let ne x = x <> 0.5");
  check_has "annotated float compare" "polymorphic-compare"
    (lint "let c a b = compare (a : float) b");
  check_has "bitkey equality" "polymorphic-compare" (lint "let f k = k = Bitkey.take k 3")

let polycmp_clean () =
  check_clean "Float.equal" (lint "let eq x = Float.equal x 1.0");
  check_clean "untyped operands" (lint "let eq a b = a = b");
  check_clean "int literals" (lint "let eq x = x = 3");
  check_clean "suppressed"
    (lint "let eq x = x = 1.0 (* srclint: allow polymorphic-compare *)")

(* Per-rule toggling: a disabled rule stays silent. *)
let rule_selection () =
  let src = "let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []" in
  check_clean "unordered rule off"
    (lint ~rules:[ Srclint.Ambient_effects; Srclint.Polymorphic_compare ] src);
  check_has "unordered rule on" "unordered-iteration"
    (lint ~rules:[ Srclint.Unordered_iteration ] src)

(* ------------------------------------------------------------------ *)
(* Rule 4: protocol-exhaustiveness, against a toy protocol *)

let toy_table =
  [
    { Protocol.constructor = "Ping"; kind = "ping"; role = Protocol.Request { ops = [ "ping" ] } };
    { Protocol.constructor = "Pong"; kind = "pong"; role = Protocol.Reply };
  ]

let toy_spec =
  {
    Srclint.proto_name = "toy";
    table = toy_table;
    type_name = "t";
    size_fn = "size";
    kind_fn = "kind";
    dispatch_fn = "dispatch";
  }

let parse src = Parse.implementation (Lexing.from_string src)

let toy_decl =
  "type t = Ping of int | Pong of int\n\
   let size = function Ping _ -> 8 | Pong _ -> 8\n\
   let kind = function Ping _ -> \"ping\" | Pong _ -> \"pong\"\n"

let toy_handler =
  "let dispatch st msg = match msg with Ping _ -> st | Pong _ -> st\n\
   let register st = add_pending st ~op:\"ping\" ()\n"

let proto_check ~decl ~handler =
  List.map snd
    (Srclint.check_protocol ~spec:toy_spec
       ~decl:("lib/toy/message.ml", parse decl)
       ~handlers:[ ("lib/toy/overlay.ml", parse handler) ])

let protocol_clean () = check_clean "toy protocol in sync" (proto_check ~decl:toy_decl ~handler:toy_handler)

let protocol_defects () =
  (* A constructor the table has never heard of. *)
  let extra_ctor =
    "type t = Ping of int | Pong of int | Probe of int\n\
     let size = function Ping _ -> 8 | Pong _ -> 8 | Probe _ -> 8\n\
     let kind = function Ping _ -> \"ping\" | Pong _ -> \"pong\" | Probe _ -> \"probe\"\n"
  in
  check_has "constructor missing from table" "protocol-exhaustiveness"
    (proto_check ~decl:extra_ctor
       ~handler:
         "let dispatch st msg = match msg with Ping _ -> st | Pong _ -> st | Probe _ -> st\n\
          let register st = add_pending st ~op:\"ping\" ()\n");
  (* A wildcard arm hiding a constructor in [size]. *)
  let wildcard_size =
    "type t = Ping of int | Pong of int\n\
     let size = function Ping _ -> 8 | _ -> 8\n\
     let kind = function Ping _ -> \"ping\" | Pong _ -> \"pong\"\n"
  in
  check_has "wildcard size arm" "protocol-exhaustiveness"
    (proto_check ~decl:wildcard_size ~handler:toy_handler);
  (* The kind function disagreeing with the table. *)
  let kind_drift =
    "type t = Ping of int | Pong of int\n\
     let size = function Ping _ -> 8 | Pong _ -> 8\n\
     let kind = function Ping _ -> \"ping\" | Pong _ -> \"pong-v2\"\n"
  in
  check_has "kind string drift" "protocol-exhaustiveness"
    (proto_check ~decl:kind_drift ~handler:toy_handler);
  (* A constructor the dispatcher never matches. *)
  check_has "unhandled in dispatch" "protocol-exhaustiveness"
    (proto_check ~decl:toy_decl
       ~handler:
         "let dispatch st msg = match msg with Ping _ -> st | _ -> st\n\
          let register st = add_pending st ~op:\"ping\" ()\n");
  (* A request kind with no pending-table registration. *)
  check_has "unregistered request op" "protocol-exhaustiveness"
    (proto_check ~decl:toy_decl ~handler:"let dispatch st msg = match msg with Ping _ -> st | Pong _ -> st\n")

(* The real protocol tables stay in sync with themselves. *)
let protocol_tables () =
  Alcotest.(check bool) "pgrid table nonempty" true (List.length Protocol.pgrid > 0);
  Alcotest.(check bool) "chord table nonempty" true (List.length Protocol.chord > 0);
  let sorted l = List.sort_uniq String.compare l = l in
  Alcotest.(check bool) "pgrid kinds sorted+unique" true (sorted (Protocol.kinds Protocol.pgrid));
  Alcotest.(check bool) "known_kinds covers both" true
    (List.for_all
       (fun k -> List.mem k Protocol.known_kinds)
       (Protocol.kinds Protocol.pgrid @ Protocol.kinds Protocol.chord))

(* ------------------------------------------------------------------ *)
(* Parse errors surface as diagnostics, not exceptions *)

let parse_error () =
  check_has "unparsable source" "parse-error" (lint "let let let = = ((")

(* ------------------------------------------------------------------ *)
(* Meta: the repo's own tree lints clean *)

(* Under `dune runtest` the test binary runs in [_build/default/test],
   with the copied source tree one level up. *)
let repo_root () =
  List.find_opt
    (fun dir -> Sys.file_exists (Filename.concat dir "lib/pgrid/message.ml"))
    [ ".."; "../.."; "." ]

let real_tree_clean () =
  match repo_root () with
  | None -> Alcotest.fail "could not locate the repo's lib/ tree from the test directory"
  | Some root ->
    let paths =
      List.filter Sys.file_exists [ Filename.concat root "lib"; Filename.concat root "bin" ]
    in
    let reports = Srclint.lint_paths paths in
    if Srclint.has_errors reports then
      Alcotest.failf "the real tree must lint clean:\n%s" (Srclint.render_reports reports);
    (* The protocol cross-check must actually have engaged (both
       substrates present), or a silent skip would fake cleanliness. *)
    Alcotest.(check bool) "scanned the pgrid sources" true
      (List.exists
         (fun (r : Srclint.report) ->
           Filename.basename r.Srclint.path = "message.ml")
         reports)

let () =
  Alcotest.run "srclint"
    [
      ( "unordered-iteration",
        [
          Alcotest.test_case "seeded defects flagged" `Quick unordered_defect;
          Alcotest.test_case "sort-normalized folds sanctioned" `Quick unordered_sanctioned;
          Alcotest.test_case "per-line suppression" `Quick unordered_suppressed;
        ] );
      ( "ambient-effects",
        [
          Alcotest.test_case "seeded defects flagged" `Quick ambient_defect;
          Alcotest.test_case "exemptions and clean code" `Quick ambient_exempt_and_clean;
        ] );
      ( "polymorphic-compare",
        [
          Alcotest.test_case "seeded defects flagged" `Quick polycmp_defect;
          Alcotest.test_case "clean and suppressed" `Quick polycmp_clean;
          Alcotest.test_case "rule toggling" `Quick rule_selection;
        ] );
      ( "protocol-exhaustiveness",
        [
          Alcotest.test_case "toy protocol in sync" `Quick protocol_clean;
          Alcotest.test_case "seeded drift flagged" `Quick protocol_defects;
          Alcotest.test_case "static tables well-formed" `Quick protocol_tables;
        ] );
      ("driver", [ Alcotest.test_case "parse errors are diagnostics" `Quick parse_error ]);
      ("meta", [ Alcotest.test_case "the real tree lints clean" `Quick real_tree_clean ]);
    ]
