(* Tests for the bulk-operation pipeline: batched shower inserts,
   in-network range aggregation and multi-key bind-join probes.

   The pipeline is a pure transport optimization, so the tests are
   mostly differential: a batched and an unbatched deployment over the
   same dataset must answer every query identically — with and without
   message loss — while the batched arm's metrics show the pipeline
   actually engaged. *)

module Rng = Unistore_util.Rng
module Metrics = Unistore_obs.Metrics
module Overlay = Unistore_pgrid.Overlay
module Store = Unistore_pgrid.Store
module Dht = Unistore_triple.Dht
module Keys = Unistore_triple.Keys
module Tstore = Unistore_triple.Tstore
module Cost = Unistore_qproc.Cost
module Binding = Unistore_qproc.Binding
module Publications = Unistore_workload.Publications

let check = Alcotest.check

let dataset ?(authors = 12) () =
  Publications.generate (Rng.create 5) { Publications.default_params with n_authors = authors }

(* Small deployments with caching off (batching must stand on its own)
   and the q-gram index off (so attribute regions are not dwarfed by
   q-gram keys and range showers span several peers). *)
let deploy ?(peers = 48) ?(drop = 0.0) ?(batched = true) ds =
  let sample_keys =
    List.concat_map
      (fun (tr : Unistore.Triple.t) ->
        [
          Keys.oid_key tr.Unistore.Triple.oid;
          Keys.attr_value_key tr.Unistore.Triple.attr tr.Unistore.Triple.value;
          Keys.value_key tr.Unistore.Triple.value;
        ])
      ds.Publications.triples
  in
  Unistore.create ~sample_keys
    {
      Unistore.default_config with
      peers;
      seed = 11;
      drop;
      qgram_index = false;
      cache = Unistore.no_cache;
      batch = (if batched then Unistore.default_batch_config else Unistore.no_batch);
    }

let loaded ?peers ?drop ?batched ds =
  let t = deploy ?peers ?drop ?batched ds in
  let stored = Unistore.load t ds.Publications.tuples in
  Unistore.settle t;
  Unistore.set_stats_of_triples t ds.Publications.triples;
  (t, stored)

let row_set (r : Unistore.Report.report) =
  List.sort compare (List.map Binding.fingerprint r.Unistore.Report.rows)

(* Re-issue until the substrate reports a complete answer — under
   message loss individual attempts may time out incomplete. *)
let query_complete ?(attempts = 120) t vql =
  let rec go n =
    if n = 0 then Alcotest.failf "query never completed under loss: %s" vql
    else
      match Unistore.query t ~origin:3 vql with
      | Error e -> Alcotest.failf "query failed: %s" e
      | Ok r -> if r.Unistore.Report.complete then r else go (n - 1)
  in
  go attempts

let queries =
  [
    (* narrow range window (aggregated shower) *)
    "SELECT ?a,?g WHERE { (?a,'age',?g) FILTER ?g >= 30 FILTER ?g <= 36 }";
    (* whole-attribute window (forked shower, in-network merging) *)
    "SELECT ?p,?y WHERE { (?p,'year',?y) FILTER ?y >= 1998 FILTER ?y <= 2007 }";
    (* bind-join whose probe round batches into multi-lookups *)
    "SELECT ?a,?att,?v WHERE { (?a,'num_of_pubs',2) (?a,?att,?v) }";
    (* exact lookups *)
    "SELECT ?n WHERE { (?a,'name',?n) }";
  ]

(* ------------------------------------------------------------------ *)
(* Overlay-level operations *)

let overlay_exn t = match Unistore.pgrid t with Some ov -> ov | None -> assert false

let test_bulk_insert_sync () =
  let ds = dataset () in
  let t = deploy ds in
  let ov = overlay_exn t in
  let items =
    List.mapi
      (fun i k -> { Store.key = k; item_id = Printf.sprintf "bi%d" i; payload = k; version = 0 })
      [ "bulk#a"; "bulk#b"; "bulk#c"; "bulk#d"; "bulk#e"; "bulk#f"; "bulk#g" ]
  in
  let r = Overlay.bulk_insert_sync ov ~origin:2 ~items in
  Alcotest.(check bool) "complete" true r.Overlay.complete;
  List.iter
    (fun (it : Store.item) ->
      let found = Overlay.lookup_sync ov ~origin:7 ~key:it.Store.key in
      Alcotest.(check bool)
        (Printf.sprintf "key %s stored" it.Store.key)
        true
        (found.Overlay.complete
        && List.exists
             (fun (i : Store.item) -> String.equal i.Store.item_id it.Store.item_id)
             found.Overlay.items))
    items;
  let m = Unistore.metrics t in
  Alcotest.(check bool) "batches sent" true (Metrics.counter m "batch.bulk.batches" > 0)

let test_bulk_insert_empty () =
  let ds = dataset () in
  let t = deploy ds in
  let r = Overlay.bulk_insert_sync (overlay_exn t) ~origin:0 ~items:[] in
  Alcotest.(check bool) "empty batch trivially complete" true r.Overlay.complete

let test_multi_lookup_sync () =
  let ds = dataset () in
  let t, _ = loaded ds in
  let ov = overlay_exn t in
  let keys =
    (List.filteri (fun i _ -> i < 6) ds.Publications.triples
    |> List.map (fun (tr : Unistore.Triple.t) ->
           Keys.attr_value_key tr.Unistore.Triple.attr tr.Unistore.Triple.value))
    @ [ "missing#key" ]
  in
  let found, r = Overlay.multi_lookup_sync ov ~origin:4 ~keys in
  Alcotest.(check bool) "complete" true r.Overlay.complete;
  check Alcotest.int "one entry per distinct key"
    (List.length (List.sort_uniq String.compare keys))
    (List.length found);
  (* Each key's answer must equal a routed singleton lookup's. *)
  List.iter
    (fun (key, items) ->
      let single = Overlay.lookup_sync ov ~origin:9 ~key in
      let ids l = List.sort compare (List.map (fun (i : Store.item) -> i.Store.item_id) l) in
      check Alcotest.(list string) ("key " ^ key) (ids single.Overlay.items) (ids items))
    found;
  Alcotest.(check bool) "missing key present but empty" true
    (match List.assoc_opt "missing#key" found with Some [] -> true | _ -> false);
  let m = Unistore.metrics t in
  Alcotest.(check bool) "probe batches sent" true (Metrics.counter m "batch.probe.batches" > 0)

let test_no_batch_disables () =
  let ds = dataset () in
  let t, stored = loaded ~batched:false ds in
  check Alcotest.int "everything stored" (List.length ds.Publications.triples) stored;
  let dht = Unistore.dht t in
  Alcotest.(check bool) "bulk_insert off" true (Option.is_none dht.Dht.bulk_insert);
  Alcotest.(check bool) "multi_lookup off" true (Option.is_none dht.Dht.multi_lookup);
  let m = Unistore.metrics t in
  check Alcotest.int "no insert batches" 0 (Metrics.counter m "batch.bulk.batches");
  check Alcotest.int "no probe batches" 0 (Metrics.counter m "batch.probe.batches");
  check Alcotest.int "no aggregation" 0 (Metrics.counter m "batch.agg.merged")

(* ------------------------------------------------------------------ *)
(* Differential: batched vs unbatched deployments *)

let test_batched_load_and_queries_agree () =
  (* Enough authors that the num_of_pubs bind-join probes at least two
     deduplicated keys per round, so multi-key probing engages. *)
  let ds = dataset ~authors:24 () in
  (* Enough peers that attribute regions span several leaves, so range
     showers fork and the converge-cast tree actually merges. *)
  let batched, stored_b = loaded ~peers:96 ~batched:true ds in
  let unbatched, stored_u = loaded ~peers:96 ~batched:false ds in
  check Alcotest.int "same triples stored" stored_u stored_b;
  check Alcotest.int "everything stored" (List.length ds.Publications.triples) stored_b;
  let mb = Unistore.metrics batched in
  Alcotest.(check bool) "bulk pipeline engaged on load" true
    (Metrics.counter mb "batch.bulk.batches" > 0);
  Metrics.clear mb;
  List.iter
    (fun vql ->
      let rb = query_complete batched vql in
      let ru = query_complete unbatched vql in
      check Alcotest.(list string) ("rows agree: " ^ vql) (row_set ru) (row_set rb))
    queries;
  (* The query phase exercised aggregation and multi-key probes. *)
  Alcotest.(check bool) "in-network merges happened" true
    (Metrics.counter mb "batch.agg.merged" > 0);
  Alcotest.(check bool) "complete flushes happened" true
    (Metrics.counter mb "batch.agg.flush.complete" > 0);
  Alcotest.(check bool) "probe batches happened" true
    (Metrics.counter mb "batch.probe.batches" > 0)

(* Insert each triple with bounded retries until the substrate
   acknowledges it: under loss a single attempt may time out, but a
   retried insert is idempotent (same key and item id), so this yields
   a deployment that provably holds the full dataset. *)
let lossy_loaded ?peers ?batched ds =
  let t = deploy ?peers ~drop:0.2 ?batched ds in
  List.iter
    (fun tr ->
      let rec go n =
        if n = 0 then Alcotest.fail "triple never inserted under loss"
        else if not (Unistore.insert_triple t ~origin:1 tr) then go (n - 1)
      in
      go 50)
    ds.Publications.triples;
  Unistore.settle t;
  (* Inserts ack on the region's primary; under loss the asynchronous
     replication pushes may have dropped, and a later shower can serve a
     region from a stale replica. Converge replicas first — that is what
     anti-entropy is for — so both arms answer from the same data. *)
  for _ = 1 to 6 do
    Unistore.anti_entropy_round t;
    Unistore.settle t
  done;
  Unistore.set_stats_of_triples t ds.Publications.triples;
  t

let test_arms_agree_under_loss () =
  (* 20% iid message loss in both arms; every query retried until it
     reports complete must still match the no-loss truth. Seeds are
     fixed, so the loss pattern (and this test) is deterministic. *)
  let ds = dataset ~authors:8 () in
  let truth, stored_t = loaded ~peers:32 ~batched:true ds in
  check Alcotest.int "truth stored everything" (List.length ds.Publications.triples) stored_t;
  let lossy_b = lossy_loaded ~peers:32 ~batched:true ds in
  let lossy_u = lossy_loaded ~peers:32 ~batched:false ds in
  List.iter
    (fun vql ->
      let rt = row_set (query_complete truth vql) in
      let rb = row_set (query_complete lossy_b vql) in
      let ru = row_set (query_complete lossy_u vql) in
      check Alcotest.(list string) ("batched arm matches truth: " ^ vql) rt rb;
      check Alcotest.(list string) ("unbatched arm matches truth: " ^ vql) rt ru)
    queries

let test_retransmit_recovers_bulk_insert () =
  (* Under loss the per-key ack protocol retransmits exactly the
     unacked remainder until the whole batch is stored. *)
  let ds = dataset ~authors:8 () in
  let t = deploy ~peers:32 ~drop:0.2 ~batched:true ds in
  let ov = overlay_exn t in
  let items =
    List.mapi
      (fun i (tr : Unistore.Triple.t) ->
        {
          Store.key = Keys.attr_value_key tr.Unistore.Triple.attr tr.Unistore.Triple.value;
          item_id = Printf.sprintf "rt%d" i;
          payload = tr.Unistore.Triple.oid;
          version = 0;
        })
      ds.Publications.triples
  in
  let r = Overlay.bulk_insert_sync ov ~origin:2 ~items in
  Alcotest.(check bool) "batch completes despite loss" true r.Overlay.complete;
  let m = Unistore.metrics t in
  Alcotest.(check bool) "selective retransmits happened" true
    (Metrics.counter m "batch.retransmit" > 0);
  (* Acks come from region primaries; sync replica state before reading. *)
  for _ = 1 to 6 do
    Unistore.anti_entropy_round t;
    Unistore.settle t
  done;
  (* Spot-check that retransmitted keys really landed. *)
  List.iteri
    (fun i (it : Store.item) ->
      if i mod 7 = 0 then begin
        let rec go n =
          if n = 0 then Alcotest.failf "lookup for %s never completed" it.Store.key
          else
            let found = Overlay.lookup_sync ov ~origin:5 ~key:it.Store.key in
            if not found.Overlay.complete then go (n - 1)
            else
              Alcotest.(check bool)
                (Printf.sprintf "item %s retrievable" it.Store.item_id)
                true
                (List.exists
                   (fun (f : Store.item) -> String.equal f.Store.item_id it.Store.item_id)
                   found.Overlay.items)
        in
        go 50
      end)
    items

(* ------------------------------------------------------------------ *)
(* Cost model *)

let test_cost_env_reflects_batching () =
  let ds = dataset () in
  let b = deploy ~batched:true ds in
  let u = deploy ~batched:false ds in
  let env_b = Cost.env_of_dht (Unistore.dht b) ~replication:2 in
  let env_u = Cost.env_of_dht (Unistore.dht u) ~replication:2 in
  Alcotest.(check bool) "batched probes advertised" true env_b.Cost.batched_probes;
  Alcotest.(check bool) "unbatched probes advertised" false env_u.Cost.batched_probes;
  (* Per-key probing scales with the left side; batched probing must
     not (it is bounded by the region count). *)
  let cb = Cost.bindjoin_cost env_b ~card_left:500.0 ~cardinality:10.0 in
  let cu = Cost.bindjoin_cost env_u ~card_left:500.0 ~cardinality:10.0 in
  Alcotest.(check bool) "batched round cheaper at scale" true
    (cb.Cost.messages < cu.Cost.messages);
  let cu2 = Cost.bindjoin_cost env_u ~card_left:1000.0 ~cardinality:10.0 in
  check (Alcotest.float 1e-6) "unbatched scales linearly" (2.0 *. cu.Cost.messages)
    cu2.Cost.messages;
  let cb2 = Cost.bindjoin_cost env_b ~card_left:1000.0 ~cardinality:10.0 in
  check (Alcotest.float 1e-6) "batched saturates at the region count" cb.Cost.messages
    cb2.Cost.messages

(* ------------------------------------------------------------------ *)
(* Tstore bulk path *)

let test_tstore_insert_bulk () =
  let ds = dataset () in
  let t = deploy ds in
  let triples = List.filteri (fun i _ -> i < 10) ds.Publications.triples in
  Alcotest.(check bool) "bulk insert completes" true
    (Tstore.insert_bulk_sync (Unistore.tstore t) ~origin:1 triples);
  Unistore.settle t;
  (* All three index entries of each triple must resolve. *)
  List.iter
    (fun (tr : Unistore.Triple.t) ->
      let r =
        Dht.lookup_sync (Unistore.dht t) ~origin:6
          ~key:
            (Keys.attr_value_key tr.Unistore.Triple.attr tr.Unistore.Triple.value)
      in
      Alcotest.(check bool) "attr-value entry resolves" true
        (r.Dht.complete && r.Dht.items <> []);
      let ro = Dht.lookup_sync (Unistore.dht t) ~origin:6 ~key:(Keys.oid_key tr.Unistore.Triple.oid) in
      Alcotest.(check bool) "oid entry resolves" true (ro.Dht.complete && ro.Dht.items <> []))
    triples

let () =
  Alcotest.run "unistore_bulk"
    [
      ( "overlay",
        [
          Alcotest.test_case "bulk_insert_sync stores everything" `Quick test_bulk_insert_sync;
          Alcotest.test_case "empty bulk insert" `Quick test_bulk_insert_empty;
          Alcotest.test_case "multi_lookup_sync = singleton lookups" `Quick
            test_multi_lookup_sync;
          Alcotest.test_case "no_batch disables the pipeline" `Quick test_no_batch_disables;
        ] );
      ( "differential",
        [
          Alcotest.test_case "batched = unbatched on load and queries" `Quick
            test_batched_load_and_queries_agree;
          Alcotest.test_case "arms agree under 20% loss" `Quick test_arms_agree_under_loss;
          Alcotest.test_case "retransmit recovers bulk insert" `Quick
            test_retransmit_recovers_bulk_insert;
        ] );
      ( "cost",
        [ Alcotest.test_case "env and bindjoin scaling" `Quick test_cost_env_reflects_batching ] );
      ( "tstore",
        [ Alcotest.test_case "insert_bulk places all indexes" `Quick test_tstore_insert_bulk ] );
    ]
